type queue_spec =
  | Droptail of int
  | Red of Red.params

type iface_event = {
  time : float;
  router : int;
  next : int;
  kind : Iface.event;
}

type router_event = {
  time : float;
  router : int;
  kind : Router.event;
}

(* The classic engine is one heap; the sharded engine is K data-plane
   heaps plus a coordinator-side control heap ({!Shard}).  Everything
   above this module (probes, detectors, TCP, the fault injector)
   schedules on [sim t], which in sharded mode is the control heap —
   control work then runs at epoch barriers, where every shard clock
   agrees, so its behaviour cannot depend on the shard count. *)
type engine = Single of Sim.t | Sharded of Shard.t

type t = {
  engine : engine;
  seed : int;
  graph : Topology.Graph.t;
  mutable routers : Router.t array;
  mutable iface_listeners : (iface_event -> unit) list;
  mutable router_listeners : (router_event -> unit) list;
  mutable link_listeners : (src:int -> dst:int -> up:bool -> unit) list;
  apps : (Packet.t -> unit) list ref array;
  pins : (int * int, int) Hashtbl.t; (* (flow, router) -> next hop *)
  mutable probe : Probe.t option;
  (* Always-on stats ride with the probe: [stats] is the main collector;
     [shard_stats] one local per shard (empty for the classic engine),
     fed inside windows on the shard domains and drained into [stats] at
     every epoch barrier.  [replaying] marks the obs-replay path at a
     flush so events already counted by a shard-local collector are not
     counted again by the main one. *)
  mutable stats : Stats.t option;
  mutable shard_stats : Stats.t array;
  mutable replaying : bool;
  (* Sharded mode: per-node uid counters, so packet identity never
     depends on cross-shard event interleaving.  Only the owning
     shard's domain touches a node's counter. *)
  uid_next : int array;
  (* Whether anything consumes wire observations (probe or data-plane
     listeners).  Pushed down into every Router/Iface [observe] flag so
     the unobserved hot path builds no events at all. *)
  mutable observed : bool;
  mutable has_apps : bool;
  (* Packet recycling: one freelist per shard (index 0 for the classic
     engine); entities release into the pool of the shard that executes
     them, so pools are never contended.  [pool_on] is the effective
     switch: pooling requested AND nothing observing packets beyond
     their network lifetime. *)
  pooling : bool;
  pools : Pool.t array;
  mutable pool_on : bool;
}

let sim t = match t.engine with Single s -> s | Sharded sh -> Shard.ctrl_sim sh

(* Observation elision and pooling are whole-network properties; both
   must be settled before the run starts.  Pooling stays inert while
   observed (events retain packets past their network lifetime) and, in
   sharded mode, while apps are attached (buffered [Obs_app] records
   would outlive the router's release of the packet). *)
let refresh_observe t =
  let observed =
    t.probe <> None || t.iface_listeners <> [] || t.router_listeners <> []
  in
  t.observed <- observed;
  t.pool_on <-
    t.pooling && (not observed)
    && (match t.engine with Single _ -> true | Sharded _ -> not t.has_apps);
  Array.iter
    (fun r ->
      Router.set_observe r observed;
      List.iter (fun i -> Iface.set_observe i observed) (Router.ifaces r))
    t.routers

let data_sim t ~node =
  match t.engine with
  | Single s -> s
  | Sharded sh -> Shard.shard_sim sh (Shard.owner sh node)

let graph t = t.graph
let router t id = t.routers.(id)

let iface t ~src ~dst = Router.iface_to t.routers.(src) dst

let subscribe_iface t f =
  t.iface_listeners <- f :: t.iface_listeners;
  refresh_observe t

let subscribe_router t f =
  t.router_listeners <- f :: t.router_listeners;
  refresh_observe t

let subscribe_link_state t f = t.link_listeners <- f :: t.link_listeners

let set_probe t probe =
  t.probe <- probe;
  (match probe with
  | Some p ->
      let main = Stats.create ~n:(Topology.Graph.size t.graph) () in
      t.stats <- Some main;
      t.shard_stats <-
        (match t.engine with
        | Single _ -> [||]
        | Sharded sh -> Array.init (Shard.k sh) (fun _ -> Stats.local main));
      Probe.set_stats p (Some main)
  | None ->
      t.stats <- None;
      t.shard_stats <- [||]);
  refresh_observe t
let probe t = t.probe
let stats t = t.stats

(* Listener records are only built when a listener exists: the common
   observed configuration (probe only) pays fields, not boxes. *)
let emit_iface t ~time ~router ~next kind =
  (match t.stats with
  | Some st when not t.replaying -> Stats.on_iface st ~time ~router ~next kind
  | _ -> ());
  (match t.probe with
  | Some p -> Probe.on_iface p ~time ~router ~next kind
  | None -> ());
  match t.iface_listeners with
  | [] -> ()
  | ls ->
      let ev = { time; router; next; kind } in
      List.iter (fun f -> f ev) ls

let emit_router t ~time ~router kind =
  (match t.stats with
  | Some st when not t.replaying -> Stats.on_router st ~time ~router kind
  | _ -> ());
  (match t.probe with
  | Some p -> Probe.on_router p ~time ~router kind
  | None -> ());
  match t.router_listeners with
  | [] -> ()
  | ls ->
      let ev = { time; router; kind } in
      List.iter (fun f -> f ev) ls

let attach_app t ~node f =
  t.apps.(node) := f :: !(t.apps.(node));
  t.has_apps <- true;
  refresh_observe t

(* Uids in sharded mode: high bits are the minting node, low bits a
   per-node counter.  Disjoint from the control plane's small
   [Sim.fresh_id] uids (TCP/Ping packets), and independent of shard
   count by construction. *)
let fresh_uid t ~node =
  match t.engine with
  | Single s -> Sim.fresh_id s
  | Sharded _ ->
      let c = t.uid_next.(node) in
      t.uid_next.(node) <- c + 1;
      ((node + 1) lsl 40) lor c

let fresh_flow_id t = Sim.fresh_id (sim t)

let flow_rng t ~flow =
  match t.engine with
  | Single s -> Sim.rng s
  | Sharded _ -> Random.State.make [| t.seed; flow; 0xf10a |]

(* Deliver one buffered shard observation at an epoch flush, in the
   merged (time, rank, emission) order — probes, listeners and apps see
   exactly the single-heap event stream.  Stats were already collected
   by the shard-local collector when the observation was buffered, so
   the replay is marked and the emit paths skip the main collector. *)
let deliver_obs t (r : Shard.obs_rec) =
  match r.obs with
  | Shard.Obs_iface { router; next; kind } ->
      t.replaying <- true;
      emit_iface t ~time:r.at ~router ~next kind;
      t.replaying <- false
  | Shard.Obs_router { router; kind } ->
      t.replaying <- true;
      emit_router t ~time:r.at ~router kind;
      t.replaying <- false
  | Shard.Obs_originate pkt -> (
      match t.probe with Some p -> Probe.on_originate p pkt | None -> ())
  | Shard.Obs_app { node; pkt } ->
      (* App callbacks may re-enter the network (a TCP endpoint answering
         synchronously); anything they cause is a new event, not a
         replay, so the flag stays down. *)
      List.iter (fun f -> f pkt) !(t.apps.(node))

(* Cross-shard receive as a registered tag: the handoff descriptor is
   (dest router, packet, prev) — no closure crosses the mailbox. *)
let tag_recv = ref 0

let () =
  tag_recv :=
    Sim.new_tag (fun _ a b i -> Router.receive_prev (Obj.obj a) ~prev:i (Obj.obj b))

let create ?(seed = 1) ?(queue = Droptail 64000) ?(jitter_bound = 300e-6) ?shards ?epoch
    ?(pooling = false) ?(poison = false) graph =
  let n = Topology.Graph.size graph in
  let engine =
    match shards with
    | None | Some 0 -> Single (Sim.create ~seed ())
    | Some k -> Sharded (Shard.create ~seed ?epoch ~graph ~k ())
  in
  let npools = match engine with Single _ -> 1 | Sharded sh -> Shard.k sh in
  let t =
    { engine; seed; graph;
      routers = [||];
      iface_listeners = [];
      router_listeners = [];
      link_listeners = [];
      apps = Array.init n (fun _ -> ref []);
      pins = Hashtbl.create 16;
      probe = None;
      stats = None;
      shard_stats = [||];
      replaying = false;
      uid_next = Array.make n 0;
      observed = false;
      has_apps = false;
      pooling;
      pools = Array.init npools (fun _ -> Pool.create ~poison ());
      pool_on = false }
  in
  let pool_ix id =
    match engine with Single _ -> 0 | Sharded sh -> Shard.owner sh id
  in
  let release_into id =
    let pool = t.pools.(pool_ix id) in
    fun p -> if t.pool_on then Pool.release pool p
  in
  let node_sim id =
    match engine with
    | Single s -> s
    | Sharded sh -> Shard.shard_sim sh (Shard.owner sh id)
  in
  t.routers <-
    Array.init n (fun id ->
        let sim = node_sim id in
        let jitter =
          match engine with
          | Single _ ->
              fun () ->
                if jitter_bound <= 0.0 then 0.0
                else Random.State.float (Sim.rng sim) jitter_bound
          | Sharded _ ->
              (* Per-router stream: forwarding jitter must not depend on
                 how draws interleave across shards. *)
              let rng = Random.State.make [| seed; id; 0x71e2 |] in
              fun () ->
                if jitter_bound <= 0.0 then 0.0 else Random.State.float rng jitter_bound
        in
        let fresh_uid =
          match engine with
          | Single _ -> None
          | Sharded _ -> Some (fun () -> fresh_uid t ~node:id)
        in
        let local_apps = t.apps.(id) in
        Router.create ~sim ~id ~jitter ?fresh_uid ~release:(release_into id)
          ~on_event:(fun r ev ->
            match engine with
            | Sharded sh when Shard.in_window () ->
                if Array.length t.shard_stats > 0 then
                  Stats.on_router
                    t.shard_stats.(Shard.current ())
                    ~time:(Sim.now sim) ~router:(Router.id r) ev;
                Shard.record sh (Shard.Obs_router { router = Router.id r; kind = ev })
            | _ -> emit_router t ~time:(Sim.now sim) ~router:(Router.id r) ev)
          ~local_deliver:(fun pkt ->
            (* Nodes without apps skip the buffered record entirely:
               the emission would iterate an empty list at the flush. *)
            if !local_apps <> [] then
              match engine with
              | Sharded sh when Shard.in_window () ->
                  Shard.record sh (Shard.Obs_app { node = id; pkt })
              | _ -> List.iter (fun f -> f pkt) !local_apps)
          ());
  let kind =
    match queue with Droptail b -> Iface.Droptail b | Red p -> Iface.Red_queue p
  in
  List.iter
    (fun (l : Topology.Graph.link) ->
      let sim = node_sim l.Topology.Graph.src in
      let dst = l.Topology.Graph.dst in
      let delivery =
        match engine with
        | Single _ -> None
        | Sharded sh ->
            (* Per-link corruption/RED stream plus the cross-shard (or
               same-shard — the event split is identical either way)
               receive handoff. *)
            let rng = Random.State.make [| seed; l.Topology.Graph.src; dst; 0xc0f1 |] in
            let rdst = Obj.repr t.routers.(dst) in
            let dshard = Shard.owner sh dst in
            Some
              (Iface.Split
                 { rng;
                   handoff =
                     (fun ~time ~rank ~prev pkt ->
                       Shard.post sh ~dest:dshard ~time ~rank ~tag:!tag_recv
                         ~i:prev rdst (Obj.repr pkt)) })
      in
      let rdst = t.routers.(dst) in
      let iface =
        Iface.create ~sim ~link:l ~kind ?delivery
          ~release:(release_into l.Topology.Graph.src)
          ~on_event:(fun i ev ->
            match engine with
            | Sharded sh when Shard.in_window () ->
                if Array.length t.shard_stats > 0 then
                  Stats.on_iface
                    t.shard_stats.(Shard.current ())
                    ~time:(Sim.now sim) ~router:(Iface.owner i)
                    ~next:(Iface.next_hop i) ev;
                Shard.record sh
                  (Shard.Obs_iface
                     { router = Iface.owner i; next = Iface.next_hop i; kind = ev })
            | _ ->
                emit_iface t ~time:(Sim.now sim) ~router:(Iface.owner i)
                  ~next:(Iface.next_hop i) ev)
          ~deliver:(fun ~prev pkt -> Router.receive_prev rdst ~prev pkt)
          ()
      in
      Router.add_iface t.routers.(l.Topology.Graph.src) iface)
    (Topology.Graph.links graph);
  refresh_observe t;
  t

let with_pins t r fallback ~prev pkt =
  match Hashtbl.find_opt t.pins (pkt.Packet.flow, Router.id r) with
  | Some next -> Some next
  | None -> fallback ~prev pkt

let use_routing t rt =
  (* The common forwarding plane goes through the int-returning table
     lookup: no option box per hop, and no pin-key tuple unless a pin
     actually exists. *)
  Array.iter
    (fun r ->
      let id = Router.id r in
      Router.set_forwarding_id r (fun ~prev:_ pkt ->
          if Hashtbl.length t.pins > 0 then
            match Hashtbl.find_opt t.pins (pkt.Packet.flow, id) with
            | Some next -> next
            | None -> Topology.Routing.next_hop_id rt id ~dst:pkt.Packet.dst
          else Topology.Routing.next_hop_id rt id ~dst:pkt.Packet.dst))
    t.routers

let use_policy t pol =
  Array.iter
    (fun r ->
      Router.set_forwarding r
        (with_pins t r (fun ~prev pkt ->
             Topology.Policy.next_hop pol ~prev ~cur:(Router.id r) ~dst:pkt.Packet.dst)))
    t.routers

let use_ecmp t ecmp =
  Array.iter
    (fun r ->
      Router.set_forwarding r
        (with_pins t r (fun ~prev:_ pkt ->
             Topology.Ecmp.next_hop ecmp (Router.id r) ~dst:pkt.Packet.dst
               ~flow:pkt.Packet.flow)))
    t.routers

let add_multicast_route t ~router ~group ~next_hops ~local =
  Router.add_multicast_route t.routers.(router) ~group ~next_hops ~local

let pin_flow_path t ~flow ~path =
  let rec walk = function
    | a :: (b :: _ as rest) ->
        if Topology.Graph.link t.graph a b = None then
          invalid_arg "Net.pin_flow_path: consecutive nodes not linked";
        Hashtbl.replace t.pins (flow, a) b;
        walk rest
    | [ _ ] | [] -> ()
  in
  walk path

let set_link t ~src ~dst up =
  match iface t ~src ~dst with
  | Some i ->
      Iface.set_up i up;
      List.iter (fun f -> f ~src ~dst ~up) t.link_listeners
  | None -> invalid_arg "Net: no such link"

let fail_link t ~src ~dst = set_link t ~src ~dst false

let set_link_corruption t ~src ~dst p =
  match iface t ~src ~dst with
  | Some i -> Iface.set_corruption i p
  | None -> invalid_arg "Net.set_link_corruption: no such link"
let restore_link t ~src ~dst = set_link t ~src ~dst true

let originate t pkt =
  match t.engine with
  | Sharded sh when Shard.in_window () ->
      if Array.length t.shard_stats > 0 then
        Stats.on_originate
          t.shard_stats.(Shard.current ())
          ~time:pkt.Packet.created pkt;
      (* The buffered record only feeds the probe; skip it when no probe
         can consume it at the flush. *)
      if t.probe <> None then Shard.record sh (Shard.Obs_originate pkt);
      Router.receive_prev t.routers.(pkt.Packet.src) ~prev:(-1) pkt
  | _ ->
      (match t.stats with
      | Some st -> Stats.on_originate st ~time:pkt.Packet.created pkt
      | None -> ());
      (match t.probe with Some p -> Probe.on_originate p pkt | None -> ());
      Router.receive_prev t.routers.(pkt.Packet.src) ~prev:(-1) pkt

(* Traffic sources mint packets here so recycling is transparent: a
   freelisted record when the pool is live, a fresh one otherwise. *)
let make_packet t ~src ~dst ~flow ~size proto =
  let uid = fresh_uid t ~node:src in
  let now = Sim.now (data_sim t ~node:src) in
  if t.pool_on then
    let ix = match t.engine with Single _ -> 0 | Sharded sh -> Shard.owner sh src in
    Pool.acquire t.pools.(ix) ~now ~uid ~src ~dst ~flow ~size proto
  else Packet.make_at ~now ~uid ~src ~dst ~flow ~size proto

(* Control-plane sources (TCP, Ping) mint with uids from the control
   heap's counter — identity unchanged — but still draw records from the
   classic engine's pool when recycling is live.  Sharded control
   packets stay fresh: pooling is inert there whenever apps are
   attached, and control endpoints always attach one. *)
let make_ctrl_packet t ~src ~dst ~flow ~size proto =
  let s = sim t in
  let uid = Sim.fresh_id s in
  let now = Sim.now s in
  match t.engine with
  | Single _ when t.pool_on ->
      Pool.acquire t.pools.(0) ~now ~uid ~src ~dst ~flow ~size proto
  | _ -> Packet.make_at ~now ~uid ~src ~dst ~flow ~size proto

let pooling_active t = t.pool_on

let pool_stats t =
  Array.fold_left
    (fun (acc : Pool.stats) p ->
      let s = Pool.stats p in
      { Pool.fresh = acc.fresh + s.fresh;
        recycled = acc.recycled + s.recycled;
        released = acc.released + s.released;
        available = acc.available + s.available })
    { Pool.fresh = 0; recycled = 0; released = 0; available = 0 }
    t.pools

let run ?until ?on_epoch t =
  match t.engine with
  | Single s ->
      ignore on_epoch;
      Sim.run ?until s
  | Sharded sh ->
      (* Fold the per-shard stats collectors into the main one at every
         epoch barrier, before any user epoch work reads them.  The fold
         is exact integer arithmetic, so the aggregate is independent of
         the shard count. *)
      let on_epoch =
        match t.stats with
        | Some main when Array.length t.shard_stats > 0 ->
            Some
              (fun ~now ->
                Array.iter (fun s -> Stats.drain ~into:main s) t.shard_stats;
                match on_epoch with Some f -> f ~now | None -> ())
        | _ -> on_epoch
      in
      Shard.run ?until ?on_epoch sh ~emit:(deliver_obs t)

let shards t = match t.engine with Single _ -> 0 | Sharded sh -> Shard.k sh
let shard_engine t = match t.engine with Single _ -> None | Sharded sh -> Some sh

let events_processed t =
  match t.engine with
  | Single s -> Sim.events_processed s
  | Sharded sh -> Shard.events_processed sh

let cpu_time_in_run t =
  match t.engine with
  | Single s -> Sim.cpu_time_in_run s
  | Sharded sh -> Shard.cpu_time_in_run sh
