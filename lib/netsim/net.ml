type queue_spec =
  | Droptail of int
  | Red of Red.params

type iface_event = {
  time : float;
  router : int;
  next : int;
  kind : Iface.event;
}

type router_event = {
  time : float;
  router : int;
  kind : Router.event;
}

type t = {
  sim : Sim.t;
  graph : Topology.Graph.t;
  mutable routers : Router.t array;
  mutable iface_listeners : (iface_event -> unit) list;
  mutable router_listeners : (router_event -> unit) list;
  apps : (Packet.t -> unit) list ref array;
  pins : (int * int, int) Hashtbl.t; (* (flow, router) -> next hop *)
  mutable probe : Probe.t option;
}

let sim t = t.sim
let graph t = t.graph
let router t id = t.routers.(id)

let iface t ~src ~dst = Router.iface_to t.routers.(src) dst

let subscribe_iface t f = t.iface_listeners <- f :: t.iface_listeners
let subscribe_router t f = t.router_listeners <- f :: t.router_listeners

let set_probe t probe = t.probe <- probe
let probe t = t.probe

let emit_iface t (ev : iface_event) =
  (match t.probe with
  | Some p -> Probe.on_iface p ~time:ev.time ~router:ev.router ~next:ev.next ev.kind
  | None -> ());
  List.iter (fun f -> f ev) t.iface_listeners

let emit_router t (ev : router_event) =
  (match t.probe with
  | Some p -> Probe.on_router p ~time:ev.time ~router:ev.router ev.kind
  | None -> ());
  List.iter (fun f -> f ev) t.router_listeners

let attach_app t ~node f = t.apps.(node) := f :: !(t.apps.(node))

let create ?(seed = 1) ?(queue = Droptail 64000) ?(jitter_bound = 300e-6) graph =
  let sim = Sim.create ~seed () in
  let n = Topology.Graph.size graph in
  let t =
    { sim; graph;
      routers = [||];
      iface_listeners = [];
      router_listeners = [];
      apps = Array.init n (fun _ -> ref []);
      pins = Hashtbl.create 16;
      probe = None }
  in
  let jitter () =
    if jitter_bound <= 0.0 then 0.0 else Random.State.float (Sim.rng sim) jitter_bound
  in
  t.routers <-
    Array.init n (fun id ->
        Router.create ~sim ~id ~jitter
          ~on_event:(fun r ev ->
            emit_router t { time = Sim.now sim; router = Router.id r; kind = ev })
          ~local_deliver:(fun pkt -> List.iter (fun f -> f pkt) !(t.apps.(id))));
  let kind =
    match queue with Droptail b -> Iface.Droptail b | Red p -> Iface.Red_queue p
  in
  List.iter
    (fun (l : Topology.Graph.link) ->
      let iface =
        Iface.create ~sim ~link:l ~kind
          ~on_event:(fun i ev ->
            emit_iface t
              { time = Sim.now sim; router = Iface.owner i; next = Iface.next_hop i;
                kind = ev })
          ~deliver:(fun ~prev pkt ->
            Router.receive t.routers.(l.Topology.Graph.dst) ~prev:(Some prev) pkt)
      in
      Router.add_iface t.routers.(l.Topology.Graph.src) iface)
    (Topology.Graph.links graph);
  t

let with_pins t r fallback ~prev pkt =
  match Hashtbl.find_opt t.pins (pkt.Packet.flow, Router.id r) with
  | Some next -> Some next
  | None -> fallback ~prev pkt

let use_routing t rt =
  Array.iter
    (fun r ->
      Router.set_forwarding r
        (with_pins t r (fun ~prev:_ pkt ->
             Topology.Routing.next_hop rt (Router.id r) ~dst:pkt.Packet.dst)))
    t.routers

let use_policy t pol =
  Array.iter
    (fun r ->
      Router.set_forwarding r
        (with_pins t r (fun ~prev pkt ->
             Topology.Policy.next_hop pol ~prev ~cur:(Router.id r) ~dst:pkt.Packet.dst)))
    t.routers

let use_ecmp t ecmp =
  Array.iter
    (fun r ->
      Router.set_forwarding r
        (with_pins t r (fun ~prev:_ pkt ->
             Topology.Ecmp.next_hop ecmp (Router.id r) ~dst:pkt.Packet.dst
               ~flow:pkt.Packet.flow)))
    t.routers

let add_multicast_route t ~router ~group ~next_hops ~local =
  Router.add_multicast_route t.routers.(router) ~group ~next_hops ~local

let pin_flow_path t ~flow ~path =
  let rec walk = function
    | a :: (b :: _ as rest) ->
        if Topology.Graph.link t.graph a b = None then
          invalid_arg "Net.pin_flow_path: consecutive nodes not linked";
        Hashtbl.replace t.pins (flow, a) b;
        walk rest
    | [ _ ] | [] -> ()
  in
  walk path

let set_link t ~src ~dst up =
  match iface t ~src ~dst with
  | Some i -> Iface.set_up i up
  | None -> invalid_arg "Net: no such link"

let fail_link t ~src ~dst = set_link t ~src ~dst false

let set_link_corruption t ~src ~dst p =
  match iface t ~src ~dst with
  | Some i -> Iface.set_corruption i p
  | None -> invalid_arg "Net.set_link_corruption: no such link"
let restore_link t ~src ~dst = set_link t ~src ~dst true

let originate t pkt =
  (match t.probe with Some p -> Probe.on_originate p pkt | None -> ());
  Router.receive t.routers.(pkt.Packet.src) ~prev:None pkt

let run ?until t = Sim.run ?until t.sim
