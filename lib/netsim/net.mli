(** A network: a topology instantiated in a simulation.

    Wires a {!Topology.Graph.t} into routers and interfaces, installs
    link-state or policy forwarding, and exposes the global event stream
    that the monitoring layer (and the experiment harness) observes. *)

type queue_spec =
  | Droptail of int         (** byte limit for every output queue *)
  | Red of Red.params

type iface_event = {
  time : float;
  router : int;            (** owner of the queue *)
  next : int;              (** neighbour the queue feeds *)
  kind : Iface.event;
}

type router_event = {
  time : float;
  router : int;
  kind : Router.event;
}

type t

val create :
  ?seed:int ->
  ?queue:queue_spec ->
  ?jitter_bound:float ->
  ?shards:int ->
  ?epoch:float ->
  ?pooling:bool ->
  ?poison:bool ->
  Topology.Graph.t ->
  t
(** Build the network.  Every router gets one output interface per
    outgoing link with the given queue discipline (default
    [Droptail 64000]).  [jitter_bound] is the per-packet processing delay
    upper bound, drawn uniformly (default 300 microseconds; pass 0. for a
    perfectly deterministic forwarding plane).

    [shards] selects the engine: absent or [0] runs the classic
    single-heap engine, byte-for-byte as before; [k >= 1] runs the
    conservative-synchronization sharded engine ({!Shard}) with the
    graph partitioned into [k] regions, one domain per region.  Sharded
    output is byte-identical for every [k >= 1] (verdicts, journal,
    trace), but not to the classic engine: randomness moves from the
    single simulation stream to per-entity streams so that no draw
    depends on cross-shard interleaving.  [epoch] is the sharded
    engine's control-plane quantum in seconds (default 0.1): detectors,
    TCP endpoints and observation delivery run at epoch barriers.
    Raises [Invalid_argument] for more shards than routers or a
    zero-latency cross-shard link.

    [pooling] (default false) turns on packet recycling: dead packets
    return to a per-shard freelist ({!Pool}) and {!make_packet} reuses
    them, so steady-state traffic allocates no packet records.  The
    pool is automatically inert while the network is observed (probe or
    data-plane listeners — observations retain packets), and, under the
    sharded engine, while apps are attached (buffered app deliveries
    outlive the packet's network lifetime); it never changes simulation
    output.  [poison] (default false) additionally stamps released
    packets so stale references read loudly-wrong data and double
    releases raise — the debug mode the allocation tests use. *)

val sim : t -> Sim.t
(** The simulation to schedule control-plane work on.  Classic engine:
    the one heap.  Sharded engine: the coordinator's control heap —
    events run at epoch barriers where every shard clock agrees.
    Consequence: feedback loops closed through this heap (e.g. a TCP
    endpoint's ACK clock) observe the network at epoch granularity, so
    adaptive senders pace to the epoch rather than the wire RTT — the
    same way for every shard count, so determinism is unaffected. *)

val data_sim : t -> node:int -> Sim.t
(** The simulation that executes [node]'s data-plane events: the shard
    heap owning the node (sharded), or the single heap (classic).
    Traffic generators schedule their ticks here. *)

val graph : t -> Topology.Graph.t
val router : t -> int -> Router.t
val iface : t -> src:int -> dst:int -> Iface.t option

val use_routing : t -> Topology.Routing.t -> unit
(** Install plain link-state forwarding on every router. *)

val use_policy : t -> Topology.Policy.t -> unit
(** Install policy (segment-excising) forwarding on every router. *)

val use_ecmp : t -> Topology.Ecmp.t -> unit
(** Install deterministic equal-cost multipath forwarding (§7.4.1):
    every router picks among its equal-cost next hops by the shared flow
    hash. *)

val subscribe_iface : t -> (iface_event -> unit) -> unit
(** Observe every queue/link event in the network (enqueue, drops,
    transmit, deliver). *)

val subscribe_router : t -> (router_event -> unit) -> unit
(** Observe router-level events (malicious actions, TTL expiry, local
    deliveries, ...). *)

val subscribe_link_state : t -> (src:int -> dst:int -> up:bool -> unit) -> unit
(** Observe administrative link-state changes ({!fail_link},
    {!restore_link}, {!set_link} — the fault injector's flaps and
    crashes); feeds {!Core.Detector.S.on_ctrl}. *)

val set_probe : t -> Probe.t option -> unit
(** Attach (or detach) the telemetry probe: every iface/router event and
    every origination is counted and journaled through it.  With no
    probe attached the per-event overhead is one pointer test.
    Attaching a probe also creates the always-on {!Stats} collector
    (see {!stats}); in sharded mode, one local collector per shard is
    fed on the shard domains and drained into the main one at every
    epoch barrier, so the aggregate is byte-identical for every shard
    count [K >= 1]. *)

val probe : t -> Probe.t option

val stats : t -> Stats.t option
(** The always-on time-series collector riding with the probe; [None]
    when no probe is attached. *)

val attach_app : t -> node:int -> (Packet.t -> unit) -> unit
(** Register a local-delivery handler at a node; every handler attached
    to the node sees every packet delivered there. *)

val add_multicast_route :
  t -> router:int -> group:int -> next_hops:int list -> local:bool -> unit
(** Install one hop of a multicast distribution tree (§7.4.3). *)

val pin_flow_path : t -> flow:int -> path:int list -> unit
(** Pin a flow to an explicit router path (the simulator's stand-in for
    source routing, needed by Perlman's multipath robustness, §3.7).
    Pinned hops take precedence over the installed forwarding for that
    flow.  Raises [Invalid_argument] if consecutive path nodes are not
    linked. *)

val fail_link : t -> src:int -> dst:int -> unit
(** Fail the directed link (fail-stop): offered packets are lost until
    {!restore_link}.  Raises [Invalid_argument] if absent. *)

val restore_link : t -> src:int -> dst:int -> unit

val set_link_corruption : t -> src:int -> dst:int -> float -> unit
(** Give a link a bit-error floor: each packet is damaged in flight with
    this probability (4.2.1's benign corruption losses).  Raises
    [Invalid_argument] if the link is absent. *)

val originate : t -> Packet.t -> unit
(** Hand a locally-generated packet to its source router for
    forwarding. *)

val make_packet :
  t -> src:int -> dst:int -> flow:int -> size:int -> Packet.proto -> Packet.t
(** Mint a data packet originated at [src]: a recycled record when
    pooling is live, a fresh one otherwise — identical content either
    way (uid from {!fresh_uid}, creation time from [src]'s data-plane
    clock).  Traffic generators must mint through this so recycling is
    transparent to them. *)

val make_ctrl_packet :
  t -> src:int -> dst:int -> flow:int -> size:int -> Packet.proto -> Packet.t
(** {!make_packet} for control-plane endpoints (TCP, Ping): the uid
    comes from the control heap's counter exactly as their direct
    [Packet.make ~sim] calls always drew it, so packet identity is
    unchanged under every engine. *)

val pooling_active : t -> bool
(** Whether packet recycling is currently live (requested at {!create}
    and not suppressed by observation state). *)

val pool_stats : t -> Pool.stats
(** Freelist counters summed over the per-shard pools. *)

val fresh_uid : t -> node:int -> int
(** Mint a packet uid for a packet originated at [node]: the
    simulation-global counter (classic), or the node's private stream
    (sharded — uids must not depend on cross-shard interleaving). *)

val fresh_flow_id : t -> int
(** Flow identifier from the control-plane counter (setup-time, so
    identical under every engine). *)

val flow_rng : t -> flow:int -> Random.State.t
(** Random stream for a traffic generator: the shared simulation stream
    (classic) or a per-flow derived stream (sharded). *)

val run : ?until:float -> ?on_epoch:(now:float -> unit) -> t -> unit
(** Run the engine.  Classic: [Sim.run (sim t)].  Sharded: conservative
    time windows with an observation flush at every epoch boundary;
    [on_epoch] fires after each flush (the hook behind
    {!Core.Detector.S.on_round}) and never fires on the classic
    engine. *)

val shards : t -> int
(** Shard count of the engine ([0] = classic single heap). *)

val shard_engine : t -> Shard.t option
(** The sharded engine itself, for stats (windows, epochs, cross-shard
    messages) and tests. *)

val events_processed : t -> int
(** Events executed across every heap of the engine. *)

val cpu_time_in_run : t -> float
(** Processor seconds spent inside event loops, summed over shard
    domains (can exceed wall clock on multiple cores). *)
