(** A network: a topology instantiated in a simulation.

    Wires a {!Topology.Graph.t} into routers and interfaces, installs
    link-state or policy forwarding, and exposes the global event stream
    that the monitoring layer (and the experiment harness) observes. *)

type queue_spec =
  | Droptail of int         (** byte limit for every output queue *)
  | Red of Red.params

type iface_event = {
  time : float;
  router : int;            (** owner of the queue *)
  next : int;              (** neighbour the queue feeds *)
  kind : Iface.event;
}

type router_event = {
  time : float;
  router : int;
  kind : Router.event;
}

type t

val create :
  ?seed:int ->
  ?queue:queue_spec ->
  ?jitter_bound:float ->
  Topology.Graph.t ->
  t
(** Build the network.  Every router gets one output interface per
    outgoing link with the given queue discipline (default
    [Droptail 64000]).  [jitter_bound] is the per-packet processing delay
    upper bound, drawn uniformly (default 300 microseconds; pass 0. for a
    perfectly deterministic forwarding plane). *)

val sim : t -> Sim.t
val graph : t -> Topology.Graph.t
val router : t -> int -> Router.t
val iface : t -> src:int -> dst:int -> Iface.t option

val use_routing : t -> Topology.Routing.t -> unit
(** Install plain link-state forwarding on every router. *)

val use_policy : t -> Topology.Policy.t -> unit
(** Install policy (segment-excising) forwarding on every router. *)

val use_ecmp : t -> Topology.Ecmp.t -> unit
(** Install deterministic equal-cost multipath forwarding (§7.4.1):
    every router picks among its equal-cost next hops by the shared flow
    hash. *)

val subscribe_iface : t -> (iface_event -> unit) -> unit
(** Observe every queue/link event in the network (enqueue, drops,
    transmit, deliver). *)

val subscribe_router : t -> (router_event -> unit) -> unit
(** Observe router-level events (malicious actions, TTL expiry, local
    deliveries, ...). *)

val set_probe : t -> Probe.t option -> unit
(** Attach (or detach) the telemetry probe: every iface/router event and
    every origination is counted and journaled through it.  With no
    probe attached the per-event overhead is one pointer test. *)

val probe : t -> Probe.t option

val attach_app : t -> node:int -> (Packet.t -> unit) -> unit
(** Register a local-delivery handler at a node; every handler attached
    to the node sees every packet delivered there. *)

val add_multicast_route :
  t -> router:int -> group:int -> next_hops:int list -> local:bool -> unit
(** Install one hop of a multicast distribution tree (§7.4.3). *)

val pin_flow_path : t -> flow:int -> path:int list -> unit
(** Pin a flow to an explicit router path (the simulator's stand-in for
    source routing, needed by Perlman's multipath robustness, §3.7).
    Pinned hops take precedence over the installed forwarding for that
    flow.  Raises [Invalid_argument] if consecutive path nodes are not
    linked. *)

val fail_link : t -> src:int -> dst:int -> unit
(** Fail the directed link (fail-stop): offered packets are lost until
    {!restore_link}.  Raises [Invalid_argument] if absent. *)

val restore_link : t -> src:int -> dst:int -> unit

val set_link_corruption : t -> src:int -> dst:int -> float -> unit
(** Give a link a bit-error floor: each packet is damaged in flight with
    this probability (4.2.1's benign corruption losses).  Raises
    [Invalid_argument] if the link is absent. *)

val originate : t -> Packet.t -> unit
(** Hand a locally-generated packet to its source router for
    forwarding. *)

val run : ?until:float -> t -> unit
(** Convenience alias for [Sim.run (sim t)]. *)
