type proto =
  | Udp
  | Tcp of tcp_header
  | Ping of int
  | Pong of int

and tcp_header = { seq : int; ack : int; syn : bool; fin : bool }

type t = {
  uid : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  proto : proto;
  mutable ttl : int;
  mutable payload : int64;
  created : float;
  mutable trace : int;
}

let make ~sim ?uid ~src ~dst ~flow ~size ?(ttl = 64) proto =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  let uid = match uid with Some uid -> uid | None -> Sim.fresh_id sim in
  (* Payloads carry pseudo-random bytes: on the wire nothing
     distinguishes one application's packet from another's, which
     stealth probing (§3.8) depends on. *)
  { uid; src; dst; flow; size; proto; ttl;
    payload = Crypto_sim.Fnv.hash_int64 (Int64.of_int uid); created = Sim.now sim;
    trace = 0 }

let clone t = { t with uid = t.uid }

let proto_words = function
  | Udp -> [ 0L ]
  | Tcp { seq; ack; syn; fin } ->
      [ 1L; Int64.of_int seq; Int64.of_int ack;
        Int64.of_int ((if syn then 2 else 0) lor if fin then 1 else 0) ]
  | Ping seq -> [ 2L; Int64.of_int seq ]
  | Pong seq -> [ 3L; Int64.of_int seq ]

let fingerprint key p =
  Crypto_sim.Siphash.hash_int64s key
    (Int64.of_int p.uid :: Int64.of_int p.src :: Int64.of_int p.dst
     :: Int64.of_int p.flow :: Int64.of_int p.size :: p.payload :: proto_words p.proto)

let is_syn p = match p.proto with Tcp h -> h.syn | Udp | Ping _ | Pong _ -> false

let describe p =
  let proto =
    match p.proto with
    | Udp -> "udp"
    | Tcp h ->
        Printf.sprintf "tcp seq=%d ack=%d%s%s" h.seq h.ack (if h.syn then " SYN" else "")
          (if h.fin then " FIN" else "")
    | Ping s -> Printf.sprintf "ping %d" s
    | Pong s -> Printf.sprintf "pong %d" s
  in
  Printf.sprintf "#%d %d->%d flow=%d %dB %s" p.uid p.src p.dst p.flow p.size proto
