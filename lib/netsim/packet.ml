type proto =
  | Udp
  | Tcp of tcp_header
  | Ping of int
  | Pong of int

and tcp_header = { seq : int; ack : int; syn : bool; fin : bool }

type t = {
  mutable uid : int;
  mutable src : int;
  mutable dst : int;
  mutable flow : int;
  mutable size : int;
  mutable proto : proto;
  mutable ttl : int;
  mutable payload : int64;
  mutable created : float;
  mutable trace : int;
  mutable q_start : float;
  mutable tx_start : float;
}

(* Payloads carry pseudo-random bytes: on the wire nothing
   distinguishes one application's packet from another's, which
   stealth probing (§3.8) depends on. *)
let make_at ~now ~uid ~src ~dst ~flow ~size ?(ttl = 64) proto =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  { uid; src; dst; flow; size; proto; ttl;
    payload = Crypto_sim.Fnv.hash_int64 (Int64.of_int uid); created = now;
    trace = 0; q_start = -1.0; tx_start = -1.0 }

let make ~sim ?uid ~src ~dst ~flow ~size ?(ttl = 64) proto =
  let uid = match uid with Some uid -> uid | None -> Sim.fresh_id sim in
  make_at ~now:(Sim.now sim) ~uid ~src ~dst ~flow ~size ~ttl proto

let clone t = { t with uid = t.uid }

(* Pool recycling: overwrite every field of a dead packet so the reused
   record is indistinguishable from a fresh [make]. *)
let reinit p ~now ~uid ~src ~dst ~flow ~size ?(ttl = 64) proto =
  if size <= 0 then invalid_arg "Packet.reinit: size must be positive";
  p.uid <- uid;
  p.src <- src;
  p.dst <- dst;
  p.flow <- flow;
  p.size <- size;
  p.proto <- proto;
  p.ttl <- ttl;
  p.payload <- Crypto_sim.Fnv.hash_int64 (Int64.of_int uid);
  p.created <- now;
  p.trace <- 0;
  p.q_start <- -1.0;
  p.tx_start <- -1.0

let proto_words = function
  | Udp -> [ 0L ]
  | Tcp { seq; ack; syn; fin } ->
      [ 1L; Int64.of_int seq; Int64.of_int ack;
        Int64.of_int ((if syn then 2 else 0) lor if fin then 1 else 0) ]
  | Ping seq -> [ 2L; Int64.of_int seq ]
  | Pong seq -> [ 3L; Int64.of_int seq ]

let fingerprint key p =
  Crypto_sim.Siphash.hash_int64s key
    (Int64.of_int p.uid :: Int64.of_int p.src :: Int64.of_int p.dst
     :: Int64.of_int p.flow :: Int64.of_int p.size :: p.payload :: proto_words p.proto)

let is_syn p = match p.proto with Tcp h -> h.syn | Udp | Ping _ | Pong _ -> false

let describe p =
  let proto =
    match p.proto with
    | Udp -> "udp"
    | Tcp h ->
        Printf.sprintf "tcp seq=%d ack=%d%s%s" h.seq h.ack (if h.syn then " SYN" else "")
          (if h.fin then " FIN" else "")
    | Ping s -> Printf.sprintf "ping %d" s
    | Pong s -> Printf.sprintf "pong %d" s
  in
  Printf.sprintf "#%d %d->%d flow=%d %dB %s" p.uid p.src p.dst p.flow p.size proto
