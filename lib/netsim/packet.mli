(** Packets.

    A packet's identity for traffic-validation purposes is its invariant
    content: everything except the TTL, which routers rewrite hop by hop
    and the fingerprint must exclude (§7.4.2). *)

type proto =
  | Udp
  | Tcp of tcp_header
  | Ping of int  (** echo request, sequence number *)
  | Pong of int  (** echo reply *)

and tcp_header = {
  seq : int;        (** first payload byte number carried, -1 for pure ACK *)
  ack : int;        (** cumulative ACK (next byte expected), -1 if unset *)
  syn : bool;
  fin : bool;
}

type t = {
  uid : int;           (** globally unique id, part of the packet content *)
  src : int;           (** originating router *)
  dst : int;           (** destination router *)
  flow : int;          (** flow identifier *)
  size : int;          (** total bytes on the wire *)
  proto : proto;
  mutable ttl : int;   (** rewritten per hop; excluded from fingerprints *)
  mutable payload : int64;  (** stand-in for payload bytes; a modification
                                attack overwrites it *)
  created : float;     (** origination time *)
  mutable trace : int; (** telemetry trace id (0 = unsampled); pure
                           observability metadata, excluded from
                           fingerprints like the TTL *)
}

val make :
  sim:Sim.t ->
  ?uid:int ->
  src:int -> dst:int -> flow:int -> size:int -> ?ttl:int -> proto -> t
(** Allocate a packet with a fresh uid and a pseudo-random payload (so
    applications' packets are indistinguishable on the wire).  [uid]
    overrides the simulation-global counter — the sharded engine draws
    uids from per-node streams so they do not depend on event
    interleaving across shards.  Raises [Invalid_argument] for a
    non-positive size. *)

val clone : t -> t
(** An independent copy carrying the same identity (uid, payload, header)
    — multicast duplication (§7.4.3): the copies are the same packet to
    any fingerprint, but mutate (TTL) independently per branch. *)

val fingerprint : Crypto_sim.Siphash.key -> t -> int64
(** Keyed fingerprint of the packet's invariant content (uid, addresses,
    flow, size, protocol header, payload — not the TTL). *)

val is_syn : t -> bool
(** True for TCP SYN segments (the target of attack 4 / attack 5). *)

val describe : t -> string
(** One-line rendering for traces. *)
