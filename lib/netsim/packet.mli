(** Packets.

    A packet's identity for traffic-validation purposes is its invariant
    content: everything except the TTL, which routers rewrite hop by hop
    and the fingerprint must exclude (§7.4.2). *)

type proto =
  | Udp
  | Tcp of tcp_header
  | Ping of int  (** echo request, sequence number *)
  | Pong of int  (** echo reply *)

and tcp_header = {
  seq : int;        (** first payload byte number carried, -1 for pure ACK *)
  ack : int;        (** cumulative ACK (next byte expected), -1 if unset *)
  syn : bool;
  fin : bool;
}

type t = {
  mutable uid : int;   (** globally unique id, part of the packet content *)
  mutable src : int;   (** originating router *)
  mutable dst : int;   (** destination router *)
  mutable flow : int;  (** flow identifier *)
  mutable size : int;  (** total bytes on the wire *)
  mutable proto : proto;
  mutable ttl : int;   (** rewritten per hop; excluded from fingerprints *)
  mutable payload : int64;  (** stand-in for payload bytes; a modification
                                attack overwrites it *)
  mutable created : float;  (** origination time *)
  mutable trace : int; (** telemetry trace id (0 = unsampled); pure
                           observability metadata, excluded from
                           fingerprints like the TTL *)
  mutable q_start : float;
      (** probe scratch: enqueue instant of the pending queue span on
          the packet's current edge; [-1] = none.  A packet sits in at
          most one queue at a time, so the field replaces a
          (uid, router, next)-keyed table on the tracing fast path.
          Observability metadata, excluded from fingerprints. *)
  mutable tx_start : float;
      (** probe scratch: transmit-start instant of the pending transit
          span; [-1] = none. *)
}

val make :
  sim:Sim.t ->
  ?uid:int ->
  src:int -> dst:int -> flow:int -> size:int -> ?ttl:int -> proto -> t
(** Allocate a packet with a fresh uid and a pseudo-random payload (so
    applications' packets are indistinguishable on the wire).  [uid]
    overrides the simulation-global counter — the sharded engine draws
    uids from per-node streams so they do not depend on event
    interleaving across shards.  Raises [Invalid_argument] for a
    non-positive size. *)

val make_at :
  now:float ->
  uid:int -> src:int -> dst:int -> flow:int -> size:int -> ?ttl:int ->
  proto -> t
(** {!make} with the origination time and uid given explicitly — the
    variant the packet {!Pool} uses, with no dependency on a [Sim.t]. *)

val reinit :
  t ->
  now:float ->
  uid:int -> src:int -> dst:int -> flow:int -> size:int -> ?ttl:int ->
  proto -> unit
(** Overwrite every field of a dead packet so the record can be reused as
    if freshly {!make}d — the {!Pool} recycling step.  All identity
    fields are mutable only for this purpose: live packets must never be
    reinitialized.  Raises [Invalid_argument] for a non-positive size. *)

val clone : t -> t
(** An independent copy carrying the same identity (uid, payload, header)
    — multicast duplication (§7.4.3): the copies are the same packet to
    any fingerprint, but mutate (TTL) independently per branch. *)

val fingerprint : Crypto_sim.Siphash.key -> t -> int64
(** Keyed fingerprint of the packet's invariant content (uid, addresses,
    flow, size, protocol header, payload — not the TTL). *)

val is_syn : t -> bool
(** True for TCP SYN segments (the target of attack 4 / attack 5). *)

val describe : t -> string
(** One-line rendering for traces. *)
