type t = {
  flow : int;
  mutable sent : int;
  mutable samples_rev : (float * float) list;
  sent_at : (int, float) Hashtbl.t;
}

let start net ~src ~dst ?(interval = 1.0) ?(size = 100) ~start ~stop () =
  let sim = Net.sim net in
  let t = { flow = Sim.fresh_id sim; sent = 0; samples_rev = []; sent_at = Hashtbl.create 64 } in
  (* Responder at dst: answer Ping with Pong on the same flow. *)
  Net.attach_app net ~node:dst (fun pkt ->
      if pkt.Packet.flow = t.flow then begin
        match pkt.Packet.proto with
        | Packet.Ping seq ->
            let reply =
              Net.make_ctrl_packet net ~src:dst ~dst:src ~flow:t.flow
                ~size:pkt.Packet.size (Packet.Pong seq)
            in
            Net.originate net reply
        | Packet.Pong _ | Packet.Udp | Packet.Tcp _ -> ()
      end);
  (* Collector at src. *)
  Net.attach_app net ~node:src (fun pkt ->
      if pkt.Packet.flow = t.flow then begin
        match pkt.Packet.proto with
        | Packet.Pong seq -> (
            match Hashtbl.find_opt t.sent_at seq with
            | Some sent_time ->
                Hashtbl.remove t.sent_at seq;
                t.samples_rev <- (sent_time, Sim.now sim -. sent_time) :: t.samples_rev
            | None -> ())
        | Packet.Ping _ | Packet.Udp | Packet.Tcp _ -> ()
      end);
  let rec tick seq () =
    if Sim.now sim <= stop then begin
      let pkt = Net.make_ctrl_packet net ~src ~dst ~flow:t.flow ~size (Packet.Ping seq) in
      t.sent <- t.sent + 1;
      Hashtbl.replace t.sent_at seq (Sim.now sim);
      Net.originate net pkt;
      Sim.schedule sim ~delay:interval (tick (seq + 1))
    end
  in
  Sim.schedule_at sim ~time:start (tick 0);
  t

let samples t = List.rev t.samples_rev
let sent t = t.sent
let lost t = Hashtbl.length t.sent_at
