(* Growable circular packet buffer: the per-interface scratch storage
   behind both queue disciplines.  [Stdlib.Queue] allocates a cell per
   push; this ring allocates only on capacity growth, so a steady-state
   enqueue/dequeue cycle costs two array writes.  Vacated slots are
   scrubbed so a dequeued packet is never pinned by its old slot. *)

type t = {
  mutable buf : Packet.t array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let none : Packet.t = Obj.magic 0 (* immediate scrub value, never read *)

let create () = { buf = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let ncap = max 16 (2 * cap) in
    let buf = Array.make ncap none in
    for i = 0 to t.len - 1 do
      buf.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- buf;
    t.head <- 0
  end

let push t p =
  grow t;
  let cap = Array.length t.buf in
  let i = t.head + t.len in
  t.buf.(if i >= cap then i - cap else i) <- p;
  t.len <- t.len + 1

(* pre: not empty *)
let pop_exn t =
  let i = t.head in
  let p = t.buf.(i) in
  t.buf.(i) <- none;
  let cap = Array.length t.buf in
  t.head <- (if i + 1 >= cap then 0 else i + 1);
  t.len <- t.len - 1;
  p

let pop t = if t.len = 0 then None else Some (pop_exn t)
