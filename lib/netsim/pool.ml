(* Packet freelist (per shard): dead packets come back through the
   entity [release] hooks and are recycled by the flow layer instead of
   being re-allocated, so a steady-state run touches the minor heap only
   for boxes the engine cannot avoid (Int64 payload refresh).  Pools are
   never shared across shards — each shard releases into its own pool —
   so no synchronization is needed.

   Debug poison mode stamps released packets with a sentinel uid and a
   zero size; any later read of a recycled packet through a stale
   reference is then loudly wrong, and a double release is detected at
   the pool boundary. *)

type t = {
  mutable free : Packet.t array;
  mutable n : int;
  poison : bool;
  mutable fresh : int;     (* packets allocated because the pool was dry *)
  mutable recycled : int;  (* acquisitions served from the freelist *)
  mutable released : int;  (* packets returned *)
}

type stats = { fresh : int; recycled : int; released : int; available : int }

let none : Packet.t = Obj.magic 0 (* scrub value for vacated slots *)

let poison_uid = -0x0DEAD

let create ?(poison = false) () =
  { free = [||]; n = 0; poison; fresh = 0; recycled = 0; released = 0 }

let is_poisoned p = p.Packet.uid = poison_uid

let release t p =
  if t.poison then begin
    if is_poisoned p then
      failwith "Pool.release: double release (packet already in the pool)";
    p.Packet.uid <- poison_uid;
    p.Packet.size <- 0;
    p.Packet.ttl <- 0
  end;
  let cap = Array.length t.free in
  if t.n = cap then begin
    let nfree = Array.make (max 64 (2 * cap)) none in
    Array.blit t.free 0 nfree 0 t.n;
    t.free <- nfree
  end;
  t.free.(t.n) <- p;
  t.n <- t.n + 1;
  t.released <- t.released + 1

let acquire t ~now ~uid ~src ~dst ~flow ~size ?ttl proto =
  if t.n = 0 then begin
    t.fresh <- t.fresh + 1;
    let p = Packet.make_at ~now ~uid ~src ~dst ~flow ~size ?ttl proto in
    p
  end
  else begin
    t.n <- t.n - 1;
    let p = t.free.(t.n) in
    t.free.(t.n) <- none;
    t.recycled <- t.recycled + 1;
    Packet.reinit p ~now ~uid ~src ~dst ~flow ~size ?ttl proto;
    p
  end

let stats (t : t) =
  { fresh = t.fresh; recycled = t.recycled; released = t.released;
    available = t.n }
