(** Packet freelists for the zero-allocation hot path.

    A pool recycles dead {!Packet.t} records: the engine's [release]
    hooks return packets the network has killed (delivered, dropped,
    TTL-expired) and the traffic sources draw replacements from the
    freelist instead of the minor heap.  Pools are strictly per shard —
    every entity releases into the pool of the shard that executes it —
    so they need no synchronization.

    Pooling only runs while the network is unobserved: the moment
    anything subscribes to wire events, packets outlive their network
    lifetime inside observations and {!Net} leaves the pool inert. *)

type t

type stats = {
  fresh : int;     (** packets allocated because the freelist was empty *)
  recycled : int;  (** acquisitions served by recycling *)
  released : int;  (** packets returned to the freelist *)
  available : int; (** current freelist depth *)
}

val create : ?poison:bool -> unit -> t
(** Fresh empty pool.  With [poison] (a debug mode), released packets are
    stamped with a sentinel uid and zero size so stale references read
    loudly-wrong data, and releasing the same packet twice fails. *)

val acquire :
  t ->
  now:float ->
  uid:int -> src:int -> dst:int -> flow:int -> size:int -> ?ttl:int ->
  Packet.proto -> Packet.t
(** A packet with the given content: recycled from the freelist when one
    is available (via {!Packet.reinit}), freshly allocated otherwise. *)

val release : t -> Packet.t -> unit
(** Return a dead packet to the freelist.  The caller must hold the only
    live reference.  In poison mode, raises [Failure] on a double
    release. *)

val is_poisoned : Packet.t -> bool
(** Whether a packet currently carries the poison stamp, i.e. reading it
    is a use-after-release bug (meaningful in poison mode only). *)

val stats : t -> stats
