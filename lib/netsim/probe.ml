type iface_record = { time : float; router : int; next : int; ev : Iface.event }
type router_record = { time : float; router : int; ev : Router.event }

type verdict = {
  time : float;
  detector : string;
  subject : int option;
  suspects : int list;
  confidence : float option;
  alarm : bool;
  detail : string;
}

type fault_record = {
  time : float;
  kind : string;
  routers : int list;
  detail : string;
}

type event =
  | Link of iface_record
  | Node of router_record
  | Verdict of verdict
  | Fault of fault_record

type t = {
  registry : Telemetry.Metrics.t;
  journal : event Telemetry.Journal.t;
  (* Conservation counters.  Every packet handed to the network
     (originate, fabricate, fragment pieces) ends up in exactly one of:
     delivered, a drop cause, replaced-by-fragments, or still in flight
     when the run stops. *)
  injected : Telemetry.Metrics.counter;
  fabricated : Telemetry.Metrics.counter;
  fragments_created : Telemetry.Metrics.counter;
  delivered : Telemetry.Metrics.counter;
  fragmented_originals : Telemetry.Metrics.counter;
  drop_congestion : Telemetry.Metrics.counter;
  drop_red_early : Telemetry.Metrics.counter;
  drop_link_down : Telemetry.Metrics.counter;
  drop_corrupted : Telemetry.Metrics.counter;
  drop_malicious : Telemetry.Metrics.counter;
  drop_no_route : Telemetry.Metrics.counter;
  drop_ttl_expired : Telemetry.Metrics.counter;
  (* Non-conservation observations. *)
  enqueued : Telemetry.Metrics.counter;
  forwarded_hops : Telemetry.Metrics.counter;
  malicious_modify : Telemetry.Metrics.counter;
  malicious_delay : Telemetry.Metrics.counter;
  verdicts : Telemetry.Metrics.counter;
  alarms : Telemetry.Metrics.counter;
  faults_injected : Telemetry.Metrics.counter;
  pkt_size : Telemetry.Metrics.histogram;
  delivery_latency : Telemetry.Metrics.histogram;
  malice_by_router : (int, Telemetry.Metrics.counter) Hashtbl.t;
  mutable first_alarm_time : float option;
  (* Verdicts are rare and load-bearing (the robustness oracle scores
     them after the run), so they are retained here in full even when
     the bounded journal has long since evicted them. *)
  mutable verdicts_rev : verdict list;
  (* Span bridge (optional).  Traced packets open per-hop spans keyed by
     (uid, router, next) — multicast clones share a uid but traverse
     distinct (router, next) edges, so the keys stay unique per branch. *)
  (* Pending per-hop span windows live on the packet itself
     ([Packet.q_start] / [Packet.tx_start]): a packet occupies at most
     one (router, next) edge at a time, so the fields replace the
     (uid, router, next)-keyed tables — and their per-event tuple keys —
     the fast path used to allocate.  Multicast clones and fragments are
     fresh records, so branches never share a window. *)
  tracer : Telemetry.Span.t option;
  named_tracks : (int, unit) Hashtbl.t;
  (* Always-on stats collector (wired by [Net.set_probe]): verdicts,
     round durations and faults feed its control-plane series directly —
     they happen on the coordinator, outside any shard window. *)
  mutable stats : Stats.t option;
}

let iface_packet = function
  | Iface.Enqueued p | Iface.Drop_congestion p | Iface.Drop_red_early p
  | Iface.Drop_link_down p | Iface.Drop_corrupted p | Iface.Transmit_start p
  | Iface.Delivered p ->
      p

let router_packet = function
  | Router.Malicious_drop { pkt; _ }
  | Router.Malicious_modify { pkt; _ }
  | Router.Malicious_delay { pkt; _ }
  | Router.Fabricated { pkt; _ } ->
      pkt
  | Router.Fragmented { original; _ } -> original
  | Router.No_route pkt | Router.Ttl_expired pkt | Router.Delivered_local pkt -> pkt

let drop_counter reg cause =
  Telemetry.Metrics.counter reg "pkt_dropped_total"
    ~help:"packets dropped, by cause" ~labels:[ ("cause", cause) ]

let create ?registry ?(journal_capacity = 65536) ?tracer () =
  let reg = match registry with Some r -> r | None -> Telemetry.Metrics.create () in
  let c name help = Telemetry.Metrics.counter reg name ~help in
  { registry = reg;
    journal = Telemetry.Journal.create ~capacity:journal_capacity ();
    injected = c "pkt_injected_total" "packets originated by applications";
    fabricated = c "pkt_fabricated_total" "packets injected by a malicious router";
    fragments_created = c "pkt_fragments_total" "fragment packets created";
    delivered = c "pkt_delivered_total" "packets delivered to a local application";
    fragmented_originals =
      c "pkt_fragmented_total" "packets replaced by their fragments";
    drop_congestion = drop_counter reg "congestion";
    drop_red_early = drop_counter reg "red_early";
    drop_link_down = drop_counter reg "link_down";
    drop_corrupted = drop_counter reg "corrupted";
    drop_malicious = drop_counter reg "malicious";
    drop_no_route = drop_counter reg "no_route";
    drop_ttl_expired = drop_counter reg "ttl_expired";
    enqueued = c "pkt_enqueued_total" "packets accepted into an output queue";
    forwarded_hops = c "pkt_forwarded_hops_total" "per-hop link deliveries";
    malicious_modify = c "malicious_modify_total" "payload modification events";
    malicious_delay = c "malicious_delay_total" "malicious delay events";
    verdicts = c "detector_verdicts_total" "detector round verdicts recorded";
    alarms = c "detector_alarms_total" "alarming detector verdicts";
    faults_injected = c "fault_injected_total" "benign faults injected into the run";
    pkt_size =
      Telemetry.Metrics.histogram reg "pkt_size_bytes" ~buckets:16 ~min_exp:4
        ~help:"size of injected packets";
    delivery_latency =
      Telemetry.Metrics.histogram reg "delivery_latency_seconds" ~buckets:24
        ~min_exp:(-14) ~help:"origination-to-delivery latency";
    malice_by_router = Hashtbl.create 8;
    first_alarm_time = None;
    verdicts_rev = [];
    tracer;
    named_tracks = Hashtbl.create 16;
    stats = None }

let registry t = t.registry
let journal t = t.journal
let tracer t = t.tracer
let set_stats t stats = t.stats <- stats
let stats t = t.stats

(* Name the (netsim, router) track on first use. *)
let net_track t sp router =
  if not (Hashtbl.mem t.named_tracks router) then begin
    Hashtbl.add t.named_tracks router ();
    Telemetry.Span.set_thread sp ~pid:Telemetry.Span.network_pid ~tid:router
      (Printf.sprintf "r%d" router)
  end;
  router

let malice_counter t router =
  match Hashtbl.find_opt t.malice_by_router router with
  | Some c -> c
  | None ->
      let c =
        Telemetry.Metrics.counter t.registry "malice_events_total"
          ~help:"malicious router actions, by router"
          ~labels:[ ("router", string_of_int router) ]
      in
      Hashtbl.add t.malice_by_router router c;
      c

let on_originate t (pkt : Packet.t) =
  Telemetry.Metrics.inc t.injected;
  Telemetry.Metrics.observe t.pkt_size (float_of_int pkt.Packet.size);
  match t.tracer with
  | None -> ()
  | Some sp -> (
      match Telemetry.Span.new_trace sp with
      | None -> ()
      | Some trace ->
          pkt.Packet.trace <- trace;
          let tid = net_track t sp pkt.Packet.src in
          ignore
            (Telemetry.Span.instant sp ~trace ~name:"originate" ~cat:"packet"
               ~pid:Telemetry.Span.network_pid ~tid ~time:pkt.Packet.created
               ~routers:[ pkt.Packet.src ]
               ~args:
                 [ ("pkt", Telemetry.Export.Int pkt.Packet.uid);
                   ("dst", Telemetry.Export.Int pkt.Packet.dst);
                   ("flow", Telemetry.Export.Int pkt.Packet.flow);
                   ("size", Telemetry.Export.Int pkt.Packet.size) ]
               ()))

(* Per-hop spans for a traced packet: enqueue->transmit ("queue") then
   transmit->deliver ("transmit"); drops become instants and clear any
   pending window so the tables never leak.  Drop instants are recorded
   for {e every} packet, traced or not: benign congestion / RED / link
   losses are exactly the anomalies the robustness oracle and
   [mrdetect trace explain] must tell apart from malice, so they never
   ride on the sampling coin — only the routine hop spans do. *)
let trace_iface t sp ~time ~router ~next (ev : Iface.event) =
  let pkt = iface_packet ev in
  let trace = pkt.Packet.trace in
  let pid = Telemetry.Span.network_pid in
  let pkt_args () =
    [ ("pkt", Telemetry.Export.Int pkt.Packet.uid);
      ("next", Telemetry.Export.Int next) ]
  in
  let drop cause =
    let tid = net_track t sp router in
    pkt.Packet.q_start <- -1.0;
    pkt.Packet.tx_start <- -1.0;
    ignore
      (Telemetry.Span.instant sp
         ?trace:(if trace <> 0 then Some trace else None)
         ~name:("drop " ^ cause) ~cat:"drop" ~pid ~tid ~time
         ~routers:[ router; next ]
         ~args:(("cause", Telemetry.Export.String cause) :: pkt_args ())
         ())
  in
  match ev with
  | Iface.Drop_congestion _ -> drop "congestion"
  | Iface.Drop_red_early _ -> drop "red_early"
  | Iface.Drop_link_down _ -> drop "link_down"
  | Iface.Drop_corrupted _ -> drop "corrupted"
  | (Iface.Enqueued _ | Iface.Transmit_start _ | Iface.Delivered _)
    when trace = 0 ->
      ()
  | Iface.Enqueued _ -> pkt.Packet.q_start <- time
  | Iface.Transmit_start _ ->
      let tid = net_track t sp router in
      let start = pkt.Packet.q_start in
      if start >= 0.0 then begin
        pkt.Packet.q_start <- -1.0;
        ignore
          (Telemetry.Span.hop_span sp ~trace ~name:"queue" ~pid ~tid ~start
             ~finish:time ~router ~next ~pkt:pkt.Packet.uid)
      end;
      pkt.Packet.tx_start <- time
  | Iface.Delivered _ ->
      let tid = net_track t sp router in
      let start = pkt.Packet.tx_start in
      if start >= 0.0 then begin
        pkt.Packet.tx_start <- -1.0;
        ignore
          (Telemetry.Span.hop_span sp ~trace ~name:"transmit" ~pid ~tid ~start
             ~finish:time ~router ~next ~pkt:pkt.Packet.uid)
      end

let on_iface t ~time ~router ~next (ev : Iface.event) =
  (match ev with
  | Iface.Enqueued _ -> Telemetry.Metrics.inc t.enqueued
  | Iface.Drop_congestion _ -> Telemetry.Metrics.inc t.drop_congestion
  | Iface.Drop_red_early _ -> Telemetry.Metrics.inc t.drop_red_early
  | Iface.Drop_link_down _ -> Telemetry.Metrics.inc t.drop_link_down
  | Iface.Drop_corrupted _ -> Telemetry.Metrics.inc t.drop_corrupted
  | Iface.Transmit_start _ -> ()
  | Iface.Delivered _ -> Telemetry.Metrics.inc t.forwarded_hops);
  Telemetry.Journal.record t.journal (Link { time; router; next; ev });
  match t.tracer with
  | Some sp -> trace_iface t sp ~time ~router ~next ev
  | None -> ()

let trace_router t sp ~time ~router (ev : Router.event) =
  let pkt = router_packet ev in
  let trace = pkt.Packet.trace in
  let name, cat =
    match ev with
    | Router.Malicious_drop _ -> ("malicious drop", "malice")
    | Router.Malicious_modify _ -> ("malicious modify", "malice")
    | Router.Malicious_delay _ -> ("malicious delay", "malice")
    | Router.Fabricated _ -> ("fabricate", "malice")
    | Router.Fragmented _ -> ("fragment", "hop")
    | Router.No_route _ -> ("drop no_route", "drop")
    | Router.Ttl_expired _ -> ("drop ttl_expired", "drop")
    | Router.Delivered_local _ -> ("deliver", "packet")
  in
  (* Anomalies (malice and drops) are always recorded; routine
     hop/delivery events only for sampled packets. *)
  if trace <> 0 || cat = "malice" || cat = "drop" then begin
    let pid = Telemetry.Span.network_pid in
    let tid = net_track t sp router in
    let args =
      ("pkt", Telemetry.Export.Int pkt.Packet.uid)
      ::
      (match ev with
      | Router.Delivered_local _ ->
          [ ("latency", Telemetry.Export.Float (time -. pkt.Packet.created)) ]
      | Router.Malicious_delay { delay; _ } ->
          [ ("delay", Telemetry.Export.Float delay) ]
      | Router.Fragmented { fragments; _ } ->
          [ ("fragments", Telemetry.Export.Int fragments) ]
      | _ -> [])
    in
    ignore
      (Telemetry.Span.instant sp
         ?trace:(if trace <> 0 then Some trace else None)
         ~name ~cat ~pid ~tid ~time ~routers:[ router ] ~args ())
  end

let on_router t ~time ~router (ev : Router.event) =
  (match ev with
  | Router.Malicious_drop _ ->
      Telemetry.Metrics.inc t.drop_malicious;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Malicious_modify _ ->
      Telemetry.Metrics.inc t.malicious_modify;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Malicious_delay _ ->
      Telemetry.Metrics.inc t.malicious_delay;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Fabricated _ ->
      Telemetry.Metrics.inc t.fabricated;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Fragmented { fragments; _ } ->
      Telemetry.Metrics.inc t.fragmented_originals;
      Telemetry.Metrics.add t.fragments_created fragments
  | Router.No_route _ -> Telemetry.Metrics.inc t.drop_no_route
  | Router.Ttl_expired _ -> Telemetry.Metrics.inc t.drop_ttl_expired
  | Router.Delivered_local pkt ->
      Telemetry.Metrics.inc t.delivered;
      Telemetry.Metrics.observe t.delivery_latency (time -. pkt.Packet.created));
  Telemetry.Journal.record t.journal (Node { time; router; ev });
  match t.tracer with
  | Some sp -> trace_router t sp ~time ~router ev
  | None -> ()

let record_verdict t ~time ~detector ?subject ?(suspects = []) ?confidence ~alarm
    ?(detail = "") ?(evidence = []) () =
  Telemetry.Metrics.inc t.verdicts;
  if alarm then begin
    Telemetry.Metrics.inc t.alarms;
    if t.first_alarm_time = None then t.first_alarm_time <- Some time
  end;
  let v = { time; detector; subject; suspects; confidence; alarm; detail } in
  t.verdicts_rev <- v :: t.verdicts_rev;
  (match t.stats with
  | Some st -> Stats.on_verdict st ~time ~detector ~alarm
  | None -> ());
  Telemetry.Journal.record t.journal (Verdict v);
  match t.tracer with
  | None -> ()
  | Some sp ->
      ignore
        (Telemetry.Span.verdict sp ~time ~detector ?subject ~suspects ?confidence
           ~alarm ~detail ~evidence ())

let first_alarm_time t = t.first_alarm_time
let verdicts t = List.rev t.verdicts_rev
let faults_recorded t = Telemetry.Metrics.counter_value t.faults_injected

let record_fault t ~time ~kind ?(routers = []) ?(detail = "") () =
  Telemetry.Metrics.inc t.faults_injected;
  (match t.stats with Some st -> Stats.on_fault st ~time | None -> ());
  Telemetry.Journal.record t.journal (Fault { time; kind; routers; detail });
  match t.tracer with
  | None -> ()
  | Some sp ->
      let pid = Telemetry.Span.detector_pid in
      let tid = Telemetry.Span.thread sp ~pid "faults" in
      let args =
        ("kind", Telemetry.Export.String kind)
        :: (if detail = "" then []
            else [ ("detail", Telemetry.Export.String detail) ])
      in
      ignore
        (Telemetry.Span.instant sp ~name:("fault " ^ kind) ~cat:"fault" ~pid ~tid
           ~time ~routers ~args ())

(* Detector-side span helpers: record on the "detectors" process, one
   track per [track] name.  No-ops (returning [None]) without a tracer,
   so protocol code can call them unconditionally. *)

let trace_span t ~track ~name ?cat ~start ~finish ?routers ?args () =
  (* Round spans double as the always-on round-duration samples: the
     stats feed runs with or without a tracer attached. *)
  (match (t.stats, cat) with
  | Some st, Some "round" -> Stats.on_round st ~track ~start ~finish
  | _ -> ());
  match t.tracer with
  | None -> None
  | Some sp ->
      let pid = Telemetry.Span.detector_pid in
      let tid = Telemetry.Span.thread sp ~pid track in
      Some
        (Telemetry.Span.span sp ~name ?cat ~pid ~tid ~start ~finish ?routers ?args
           ())

let trace_instant t ~track ~name ?cat ~time ?routers ?args () =
  match t.tracer with
  | None -> None
  | Some sp ->
      let pid = Telemetry.Span.detector_pid in
      let tid = Telemetry.Span.thread sp ~pid track in
      Some (Telemetry.Span.instant sp ~name ?cat ~pid ~tid ~time ?routers ?args ())

(* --- conservation --- *)

let v = Telemetry.Metrics.counter_value

type conservation = {
  total_injected : int;   (* originate + fabricate + fragments *)
  total_delivered : int;
  total_dropped : int;    (* all causes *)
  total_fragmented : int; (* originals replaced by fragments *)
  in_flight : int;
}

let conservation t =
  let total_injected = v t.injected + v t.fabricated + v t.fragments_created in
  let total_delivered = v t.delivered in
  let total_dropped =
    v t.drop_congestion + v t.drop_red_early + v t.drop_link_down
    + v t.drop_corrupted + v t.drop_malicious + v t.drop_no_route
    + v t.drop_ttl_expired
  in
  let total_fragmented = v t.fragmented_originals in
  { total_injected; total_delivered; total_dropped; total_fragmented;
    in_flight = total_injected - total_delivered - total_dropped - total_fragmented }

(* --- formatting: the legacy Tracer line format, derived on demand --- *)

let describe_iface_kind = function
  | Iface.Enqueued _ -> "enqueue"
  | Iface.Drop_congestion _ -> "DROP-congestion"
  | Iface.Drop_red_early _ -> "DROP-red"
  | Iface.Drop_link_down _ -> "DROP-link-down"
  | Iface.Drop_corrupted _ -> "DROP-corrupted"
  | Iface.Transmit_start _ -> "transmit"
  | Iface.Delivered _ -> "deliver"

let describe_router_kind = function
  | Router.Malicious_drop _ -> "MALICIOUS-drop"
  | Router.Malicious_modify _ -> "MALICIOUS-modify"
  | Router.Malicious_delay { delay; _ } ->
      Printf.sprintf "MALICIOUS-delay(%.3fs)" delay
  | Router.Fabricated _ -> "MALICIOUS-fabricate"
  | Router.Fragmented { fragments; _ } -> Printf.sprintf "fragment(x%d)" fragments
  | Router.No_route _ -> "no-route"
  | Router.Ttl_expired _ -> "ttl-expired"
  | Router.Delivered_local _ -> "local-deliver"

let describe = function
  | Link { time; router; next; ev } ->
      Printf.sprintf "%.4f r%d->r%d %s %s" time router next (describe_iface_kind ev)
        (Packet.describe (iface_packet ev))
  | Node { time; router; ev } ->
      Printf.sprintf "%.4f r%d %s %s" time router (describe_router_kind ev)
        (Packet.describe (router_packet ev))
  | Verdict { time; detector; suspects; alarm; _ } ->
      Printf.sprintf "%.4f %s %s%s" time detector
        (if alarm then "ALARM" else "verdict")
        (match suspects with
        | [] -> ""
        | s -> " suspects=" ^ String.concat "," (List.map string_of_int s))
  | Fault { time; kind; routers; detail } ->
      Printf.sprintf "%.4f FAULT-%s%s%s" time kind
        (match routers with
        | [] -> ""
        | rs -> " r" ^ String.concat ",r" (List.map string_of_int rs))
        (if detail = "" then "" else " " ^ detail)

(* --- JSONL export --- *)

let event_time = function
  | Link { time; _ } | Node { time; _ } | Verdict { time; _ } | Fault { time; _ }
    ->
      time

let event_packet = function
  | Link { ev; _ } -> Some (iface_packet ev)
  | Node { ev; _ } -> Some (router_packet ev)
  | Verdict _ | Fault _ -> None

let json_of_packet (p : Packet.t) =
  Telemetry.Export.Assoc
    [ ("uid", Telemetry.Export.Int p.Packet.uid);
      ("src", Telemetry.Export.Int p.Packet.src);
      ("dst", Telemetry.Export.Int p.Packet.dst);
      ("flow", Telemetry.Export.Int p.Packet.flow);
      ("size", Telemetry.Export.Int p.Packet.size) ]

let json_of_event ev =
  let open Telemetry.Export in
  let base =
    match ev with
    | Link { router; next; ev; _ } ->
        [ ("event", String (describe_iface_kind ev));
          ("layer", String "link");
          ("router", Int router);
          ("next", Int next) ]
    | Node { router; ev; _ } ->
        [ ("event", String (describe_router_kind ev));
          ("layer", String "router");
          ("router", Int router) ]
    | Verdict { detector; subject; suspects; confidence; alarm; detail; _ } ->
        [ ("event", String "verdict");
          ("layer", String "detector");
          ("detector", String detector) ]
        @ (match subject with Some s -> [ ("router", Int s) ] | None -> [])
        @ [ ("suspects", List (List.map (fun s -> Int s) suspects)) ]
        @ (match confidence with
          | Some c -> [ ("confidence", Float c) ]
          | None -> [])
        @ [ ("alarm", Bool alarm) ]
        @ (if detail = "" then [] else [ ("detail", String detail) ])
    | Fault { kind; routers; detail; _ } ->
        [ ("event", String ("fault-" ^ kind));
          ("layer", String "fault");
          ("routers", List (List.map (fun r -> Int r) routers)) ]
        @ if detail = "" then [] else [ ("detail", String detail) ]
  in
  Assoc
    ((("time", Float (event_time ev)) :: base)
    @ match event_packet ev with Some p -> [ ("pkt", json_of_packet p) ] | None -> [])

let write_journal t oc =
  Telemetry.Journal.iter t.journal (fun ev ->
      Telemetry.Export.to_channel oc (json_of_event ev);
      output_char oc '\n')
