type iface_record = { time : float; router : int; next : int; ev : Iface.event }
type router_record = { time : float; router : int; ev : Router.event }

type verdict = {
  time : float;
  detector : string;
  subject : int option;
  suspects : int list;
  confidence : float option;
  alarm : bool;
  detail : string;
}

type event =
  | Link of iface_record
  | Node of router_record
  | Verdict of verdict

type t = {
  registry : Telemetry.Metrics.t;
  journal : event Telemetry.Journal.t;
  (* Conservation counters.  Every packet handed to the network
     (originate, fabricate, fragment pieces) ends up in exactly one of:
     delivered, a drop cause, replaced-by-fragments, or still in flight
     when the run stops. *)
  injected : Telemetry.Metrics.counter;
  fabricated : Telemetry.Metrics.counter;
  fragments_created : Telemetry.Metrics.counter;
  delivered : Telemetry.Metrics.counter;
  fragmented_originals : Telemetry.Metrics.counter;
  drop_congestion : Telemetry.Metrics.counter;
  drop_red_early : Telemetry.Metrics.counter;
  drop_link_down : Telemetry.Metrics.counter;
  drop_corrupted : Telemetry.Metrics.counter;
  drop_malicious : Telemetry.Metrics.counter;
  drop_no_route : Telemetry.Metrics.counter;
  drop_ttl_expired : Telemetry.Metrics.counter;
  (* Non-conservation observations. *)
  enqueued : Telemetry.Metrics.counter;
  forwarded_hops : Telemetry.Metrics.counter;
  malicious_modify : Telemetry.Metrics.counter;
  malicious_delay : Telemetry.Metrics.counter;
  verdicts : Telemetry.Metrics.counter;
  alarms : Telemetry.Metrics.counter;
  pkt_size : Telemetry.Metrics.histogram;
  delivery_latency : Telemetry.Metrics.histogram;
  malice_by_router : (int, Telemetry.Metrics.counter) Hashtbl.t;
  mutable first_alarm_time : float option;
}

let drop_counter reg cause =
  Telemetry.Metrics.counter reg "pkt_dropped_total"
    ~help:"packets dropped, by cause" ~labels:[ ("cause", cause) ]

let create ?registry ?(journal_capacity = 65536) () =
  let reg = match registry with Some r -> r | None -> Telemetry.Metrics.create () in
  let c name help = Telemetry.Metrics.counter reg name ~help in
  { registry = reg;
    journal = Telemetry.Journal.create ~capacity:journal_capacity ();
    injected = c "pkt_injected_total" "packets originated by applications";
    fabricated = c "pkt_fabricated_total" "packets injected by a malicious router";
    fragments_created = c "pkt_fragments_total" "fragment packets created";
    delivered = c "pkt_delivered_total" "packets delivered to a local application";
    fragmented_originals =
      c "pkt_fragmented_total" "packets replaced by their fragments";
    drop_congestion = drop_counter reg "congestion";
    drop_red_early = drop_counter reg "red_early";
    drop_link_down = drop_counter reg "link_down";
    drop_corrupted = drop_counter reg "corrupted";
    drop_malicious = drop_counter reg "malicious";
    drop_no_route = drop_counter reg "no_route";
    drop_ttl_expired = drop_counter reg "ttl_expired";
    enqueued = c "pkt_enqueued_total" "packets accepted into an output queue";
    forwarded_hops = c "pkt_forwarded_hops_total" "per-hop link deliveries";
    malicious_modify = c "malicious_modify_total" "payload modification events";
    malicious_delay = c "malicious_delay_total" "malicious delay events";
    verdicts = c "detector_verdicts_total" "detector round verdicts recorded";
    alarms = c "detector_alarms_total" "alarming detector verdicts";
    pkt_size =
      Telemetry.Metrics.histogram reg "pkt_size_bytes" ~buckets:16 ~min_exp:4
        ~help:"size of injected packets";
    delivery_latency =
      Telemetry.Metrics.histogram reg "delivery_latency_seconds" ~buckets:24
        ~min_exp:(-14) ~help:"origination-to-delivery latency";
    malice_by_router = Hashtbl.create 8;
    first_alarm_time = None }

let registry t = t.registry
let journal t = t.journal

let malice_counter t router =
  match Hashtbl.find_opt t.malice_by_router router with
  | Some c -> c
  | None ->
      let c =
        Telemetry.Metrics.counter t.registry "malice_events_total"
          ~help:"malicious router actions, by router"
          ~labels:[ ("router", string_of_int router) ]
      in
      Hashtbl.add t.malice_by_router router c;
      c

let on_originate t (pkt : Packet.t) =
  Telemetry.Metrics.inc t.injected;
  Telemetry.Metrics.observe t.pkt_size (float_of_int pkt.Packet.size)

let on_iface t ~time ~router ~next (ev : Iface.event) =
  (match ev with
  | Iface.Enqueued _ -> Telemetry.Metrics.inc t.enqueued
  | Iface.Drop_congestion _ -> Telemetry.Metrics.inc t.drop_congestion
  | Iface.Drop_red_early _ -> Telemetry.Metrics.inc t.drop_red_early
  | Iface.Drop_link_down _ -> Telemetry.Metrics.inc t.drop_link_down
  | Iface.Drop_corrupted _ -> Telemetry.Metrics.inc t.drop_corrupted
  | Iface.Transmit_start _ -> ()
  | Iface.Delivered _ -> Telemetry.Metrics.inc t.forwarded_hops);
  Telemetry.Journal.record t.journal (Link { time; router; next; ev })

let on_router t ~time ~router (ev : Router.event) =
  (match ev with
  | Router.Malicious_drop _ ->
      Telemetry.Metrics.inc t.drop_malicious;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Malicious_modify _ ->
      Telemetry.Metrics.inc t.malicious_modify;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Malicious_delay _ ->
      Telemetry.Metrics.inc t.malicious_delay;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Fabricated _ ->
      Telemetry.Metrics.inc t.fabricated;
      Telemetry.Metrics.inc (malice_counter t router)
  | Router.Fragmented { fragments; _ } ->
      Telemetry.Metrics.inc t.fragmented_originals;
      Telemetry.Metrics.add t.fragments_created fragments
  | Router.No_route _ -> Telemetry.Metrics.inc t.drop_no_route
  | Router.Ttl_expired _ -> Telemetry.Metrics.inc t.drop_ttl_expired
  | Router.Delivered_local pkt ->
      Telemetry.Metrics.inc t.delivered;
      Telemetry.Metrics.observe t.delivery_latency (time -. pkt.Packet.created));
  Telemetry.Journal.record t.journal (Node { time; router; ev })

let record_verdict t ~time ~detector ?subject ?(suspects = []) ?confidence ~alarm
    ?(detail = "") () =
  Telemetry.Metrics.inc t.verdicts;
  if alarm then begin
    Telemetry.Metrics.inc t.alarms;
    if t.first_alarm_time = None then t.first_alarm_time <- Some time
  end;
  Telemetry.Journal.record t.journal
    (Verdict { time; detector; subject; suspects; confidence; alarm; detail })

let first_alarm_time t = t.first_alarm_time

(* --- conservation --- *)

let v = Telemetry.Metrics.counter_value

type conservation = {
  total_injected : int;   (* originate + fabricate + fragments *)
  total_delivered : int;
  total_dropped : int;    (* all causes *)
  total_fragmented : int; (* originals replaced by fragments *)
  in_flight : int;
}

let conservation t =
  let total_injected = v t.injected + v t.fabricated + v t.fragments_created in
  let total_delivered = v t.delivered in
  let total_dropped =
    v t.drop_congestion + v t.drop_red_early + v t.drop_link_down
    + v t.drop_corrupted + v t.drop_malicious + v t.drop_no_route
    + v t.drop_ttl_expired
  in
  let total_fragmented = v t.fragmented_originals in
  { total_injected; total_delivered; total_dropped; total_fragmented;
    in_flight = total_injected - total_delivered - total_dropped - total_fragmented }

(* --- formatting: the legacy Tracer line format, derived on demand --- *)

let describe_iface_kind = function
  | Iface.Enqueued _ -> "enqueue"
  | Iface.Drop_congestion _ -> "DROP-congestion"
  | Iface.Drop_red_early _ -> "DROP-red"
  | Iface.Drop_link_down _ -> "DROP-link-down"
  | Iface.Drop_corrupted _ -> "DROP-corrupted"
  | Iface.Transmit_start _ -> "transmit"
  | Iface.Delivered _ -> "deliver"

let iface_packet = function
  | Iface.Enqueued p | Iface.Drop_congestion p | Iface.Drop_red_early p
  | Iface.Drop_link_down p | Iface.Drop_corrupted p | Iface.Transmit_start p
  | Iface.Delivered p ->
      p

let describe_router_kind = function
  | Router.Malicious_drop _ -> "MALICIOUS-drop"
  | Router.Malicious_modify _ -> "MALICIOUS-modify"
  | Router.Malicious_delay { delay; _ } ->
      Printf.sprintf "MALICIOUS-delay(%.3fs)" delay
  | Router.Fabricated _ -> "MALICIOUS-fabricate"
  | Router.Fragmented { fragments; _ } -> Printf.sprintf "fragment(x%d)" fragments
  | Router.No_route _ -> "no-route"
  | Router.Ttl_expired _ -> "ttl-expired"
  | Router.Delivered_local _ -> "local-deliver"

let router_packet = function
  | Router.Malicious_drop { pkt; _ }
  | Router.Malicious_modify { pkt; _ }
  | Router.Malicious_delay { pkt; _ }
  | Router.Fabricated { pkt; _ } ->
      pkt
  | Router.Fragmented { original; _ } -> original
  | Router.No_route pkt | Router.Ttl_expired pkt | Router.Delivered_local pkt -> pkt

let describe = function
  | Link { time; router; next; ev } ->
      Printf.sprintf "%.4f r%d->r%d %s %s" time router next (describe_iface_kind ev)
        (Packet.describe (iface_packet ev))
  | Node { time; router; ev } ->
      Printf.sprintf "%.4f r%d %s %s" time router (describe_router_kind ev)
        (Packet.describe (router_packet ev))
  | Verdict { time; detector; suspects; alarm; _ } ->
      Printf.sprintf "%.4f %s %s%s" time detector
        (if alarm then "ALARM" else "verdict")
        (match suspects with
        | [] -> ""
        | s -> " suspects=" ^ String.concat "," (List.map string_of_int s))

(* --- JSONL export --- *)

let event_time = function
  | Link { time; _ } | Node { time; _ } | Verdict { time; _ } -> time

let event_packet = function
  | Link { ev; _ } -> Some (iface_packet ev)
  | Node { ev; _ } -> Some (router_packet ev)
  | Verdict _ -> None

let json_of_packet (p : Packet.t) =
  Telemetry.Export.Assoc
    [ ("uid", Telemetry.Export.Int p.Packet.uid);
      ("src", Telemetry.Export.Int p.Packet.src);
      ("dst", Telemetry.Export.Int p.Packet.dst);
      ("flow", Telemetry.Export.Int p.Packet.flow);
      ("size", Telemetry.Export.Int p.Packet.size) ]

let json_of_event ev =
  let open Telemetry.Export in
  let base =
    match ev with
    | Link { router; next; ev; _ } ->
        [ ("event", String (describe_iface_kind ev));
          ("layer", String "link");
          ("router", Int router);
          ("next", Int next) ]
    | Node { router; ev; _ } ->
        [ ("event", String (describe_router_kind ev));
          ("layer", String "router");
          ("router", Int router) ]
    | Verdict { detector; subject; suspects; confidence; alarm; detail; _ } ->
        [ ("event", String "verdict");
          ("layer", String "detector");
          ("detector", String detector) ]
        @ (match subject with Some s -> [ ("router", Int s) ] | None -> [])
        @ [ ("suspects", List (List.map (fun s -> Int s) suspects)) ]
        @ (match confidence with
          | Some c -> [ ("confidence", Float c) ]
          | None -> [])
        @ [ ("alarm", Bool alarm) ]
        @ if detail = "" then [] else [ ("detail", String detail) ]
  in
  Assoc
    ((("time", Float (event_time ev)) :: base)
    @ match event_packet ev with Some p -> [ ("pkt", json_of_packet p) ] | None -> [])

let write_journal t oc =
  Telemetry.Journal.iter t.journal (fun ev ->
      Telemetry.Export.to_channel oc (json_of_event ev);
      output_char oc '\n')
