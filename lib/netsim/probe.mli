(** The simulator's observability pipeline.

    A probe bundles a {!Telemetry.Metrics} registry (packet counters by
    outcome, per-router malice counters, size and latency histograms)
    with a bounded {!Telemetry.Journal} of typed records covering all
    three layers: link events, router events, and detector verdicts.
    Attach one to a network with {!Net.set_probe} — the forwarding plane
    feeds it directly, and detectors add verdicts via
    {!record_verdict}.  With no probe attached the per-event cost in the
    forwarding plane is a single pointer test.

    {!Tracer} derives its legacy line format from the same typed records
    via {!describe}; exporters turn the journal into JSONL with
    {!write_journal}.

    A probe can additionally bridge into a {!Telemetry.Span} collector
    (pass [tracer] at creation): {!on_originate} then assigns each
    sampled packet a trace id carried in [Packet.trace], per-hop link
    events open queue/transmit spans and drop instants on the packet's
    trace, router events become instants, and {!record_verdict} writes a
    provenance record pinning the flight-recorder window for the
    implicated routers.  Detectors add their own round spans and
    evidence instants via {!trace_span} / {!trace_instant}. *)

type iface_record = { time : float; router : int; next : int; ev : Iface.event }
type router_record = { time : float; router : int; ev : Router.event }

type verdict = {
  time : float;
  detector : string;          (** "chi" | "fatih" | "pi2" | "watchers" | ... *)
  subject : int option;       (** the router under validation, if any *)
  suspects : int list;        (** accused routers/flows (detector-specific) *)
  confidence : float option;
  alarm : bool;
  detail : string;
}

type fault_record = {
  time : float;
  kind : string;     (** "link_down" | "link_up" | "crash" | "restart" | ... *)
  routers : int list;
  detail : string;
}
(** A {e benign} injected fault: churn the oracle must excuse, never a
    malicious action. *)

type event =
  | Link of iface_record
  | Node of router_record
  | Verdict of verdict
  | Fault of fault_record

type t

val create :
  ?registry:Telemetry.Metrics.t ->
  ?journal_capacity:int ->
  ?tracer:Telemetry.Span.t ->
  unit ->
  t
(** A fresh probe; [journal_capacity] bounds the journal (default 65536
    records).  Pass [registry] to share one registry across several
    probes (or with application metrics); pass [tracer] to record causal
    spans alongside the journal. *)

val registry : t -> Telemetry.Metrics.t
val journal : t -> event Telemetry.Journal.t

val tracer : t -> Telemetry.Span.t option
(** The span collector attached at creation, if any. *)

val set_stats : t -> Stats.t option -> unit
(** Wire the always-on {!Stats} collector (done by [Net.set_probe]):
    verdicts, faults and round spans then feed its control-plane series
    and histograms — with or without a tracer attached. *)

val stats : t -> Stats.t option

val on_originate : t -> Packet.t -> unit
(** Count an application origination.  With a tracer attached this also
    draws the sampling coin and, when sampled, stamps [Packet.trace]
    and records an "originate" instant. *)

val on_iface : t -> time:float -> router:int -> next:int -> Iface.event -> unit
val on_router : t -> time:float -> router:int -> Router.event -> unit
(** Forwarding-plane hooks (called by {!Net}): bump the matching
    counters, journal the typed record and (for traced packets) record
    hop spans / instants. *)

val record_verdict :
  t ->
  time:float ->
  detector:string ->
  ?subject:int ->
  ?suspects:int list ->
  ?confidence:float ->
  alarm:bool ->
  ?detail:string ->
  ?evidence:Telemetry.Span.id list ->
  unit ->
  unit
(** Journal a detector verdict; alarming verdicts also advance the
    alarm counter and pin {!first_alarm_time}.  With a tracer attached
    the verdict becomes a provenance record whose [evidence] ids (from
    {!trace_span} / {!trace_instant}) justify the accusation, and the
    flight-recorder window for the implicated routers is pinned. *)

val trace_span :
  t ->
  track:string ->
  name:string ->
  ?cat:string ->
  start:float ->
  finish:float ->
  ?routers:int list ->
  ?args:(string * Telemetry.Export.json) list ->
  unit ->
  Telemetry.Span.id option
(** Record a detector-side span on the named track (e.g. a protocol
    round).  [None] — and no work — without a tracer. *)

val trace_instant :
  t ->
  track:string ->
  name:string ->
  ?cat:string ->
  time:float ->
  ?routers:int list ->
  ?args:(string * Telemetry.Export.json) list ->
  unit ->
  Telemetry.Span.id option
(** Record a detector-side point event (e.g. a suspicious loss used as
    verdict evidence).  [None] without a tracer. *)

val record_fault :
  t ->
  time:float ->
  kind:string ->
  ?routers:int list ->
  ?detail:string ->
  unit ->
  unit
(** Journal a benign injected fault (from {!Faults.Injector} or the
    chaos generator), bump the fault counter, and — with a tracer
    attached — record an instant on the detector-side "faults" track so
    the churn shows up in [mrdetect trace explain] next to the verdicts
    it might have confused. *)

val first_alarm_time : t -> float option

val verdicts : t -> verdict list
(** Every verdict recorded through {!record_verdict}, oldest first.
    Unlike the bounded journal — where heavy link traffic can evict an
    early verdict — this list is complete for the whole run; it is what
    {!Faults.Oracle} scores. *)

val faults_recorded : t -> int
(** Total benign faults recorded through {!record_fault}. *)

type conservation = {
  total_injected : int;
      (** originated + fabricated + fragment pieces created *)
  total_delivered : int;
  total_dropped : int;     (** all causes, congestion through malice *)
  total_fragmented : int;  (** originals replaced by their fragments *)
  in_flight : int;
      (** injected − delivered − dropped − fragmented: packets still
          queued or propagating when the run stopped (multicast
          duplication is the one path that injects copies outside these
          counters) *)
}

val conservation : t -> conservation

val describe : event -> string
(** The legacy one-line trace rendering ("12.0345 r3->r4 deliver #812
    ...") derived from the typed record. *)

val iface_packet : Iface.event -> Packet.t
val router_packet : Router.event -> Packet.t
(** The packet a record is about (for [Fragmented], the original). *)

val json_of_event : event -> Telemetry.Export.json

val write_journal : t -> out_channel -> unit
(** Dump the retained journal as JSONL, oldest record first. *)
