type t = { q : Pktring.t; limit : int; mutable bytes : int }

let create ?(limit_bytes = 64000) () =
  if limit_bytes <= 0 then invalid_arg "Queue_fifo.create: limit must be positive";
  { q = Pktring.create (); limit = limit_bytes; bytes = 0 }

let limit t = t.limit
let occupancy t = t.bytes
let length t = Pktring.length t.q
let is_empty t = Pktring.is_empty t.q

let try_enqueue t p =
  if t.bytes + p.Packet.size > t.limit then false
  else begin
    Pktring.push t.q p;
    t.bytes <- t.bytes + p.Packet.size;
    true
  end

(* pre: not empty *)
let dequeue_exn t =
  let p = Pktring.pop_exn t.q in
  t.bytes <- t.bytes - p.Packet.size;
  p

let dequeue t = if is_empty t then None else Some (dequeue_exn t)
