(** Output-buffered drop-tail FIFO queue, measured in bytes (§6.1.3).

    Protocol χ's traffic validation predicts exactly this queue's
    behaviour: a packet is dropped by congestion iff enqueueing it would
    exceed the byte limit. *)

type t

val create : ?limit_bytes:int -> unit -> t
(** Default limit 64000 bytes, the size used in the Emulab experiments'
    scale.  Raises [Invalid_argument] on a non-positive limit. *)

val limit : t -> int
val occupancy : t -> int
(** Bytes currently queued. *)

val length : t -> int
(** Packets currently queued. *)

val is_empty : t -> bool

val try_enqueue : t -> Packet.t -> bool
(** Append the packet if it fits; [false] means a congestion drop. *)

val dequeue : t -> Packet.t option
(** Remove the head packet. *)

val dequeue_exn : t -> Packet.t
(** {!dequeue} without the option box; the queue must not be empty. *)
