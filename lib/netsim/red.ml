type params = {
  limit_bytes : int;
  min_th : float;
  max_th : float;
  max_p : float;
  wq : float;
  mean_pkt_size : int;
  gentle : bool;
}

let default_params =
  { limit_bytes = 64000; min_th = 30000.0; max_th = 60000.0; max_p = 0.1; wq = 0.002;
    mean_pkt_size = 1000; gentle = false }

type t = {
  p : params;
  q : Pktring.t;
  rng : Random.State.t;
  mutable bytes : int;
  mutable avg : float;
  mutable count : int;      (* packets since last drop; -1 = below min_th *)
  (* idle tracking as two plain fields instead of a [float option]: the
     hot path must not box a float per idle transition *)
  mutable idle : bool;
  mutable idle_since : float;
}

let validate p =
  if p.limit_bytes <= 0 then invalid_arg "Red.create: limit must be positive";
  if not (0.0 <= p.min_th && p.min_th < p.max_th) then
    invalid_arg "Red.create: need 0 <= min_th < max_th";
  if not (0.0 < p.max_p && p.max_p <= 1.0) then invalid_arg "Red.create: max_p in (0,1]";
  if not (0.0 < p.wq && p.wq <= 1.0) then invalid_arg "Red.create: wq in (0,1]"

let create ?(params = default_params) ~rng () =
  validate params;
  { p = params; q = Pktring.create (); rng; bytes = 0; avg = 0.0; count = -1;
    idle = true; idle_since = 0.0 }

let params t = t.p
let occupancy t = t.bytes
let avg t = t.avg
let count_since_drop t = t.count
let is_empty t = Pktring.is_empty t.q
let length t = Pktring.length t.q

let decay_avg p ~avg ~idle ~link_bw =
  (* The queue was empty for [idle] seconds: pretend m small packets
     departed and apply the EWMA m times. *)
  if idle <= 0.0 then avg
  else begin
    let s = float_of_int p.mean_pkt_size /. link_bw in
    let m = idle /. s in
    avg *. ((1.0 -. p.wq) ** m)
  end

let update_avg p ~avg ~occupancy =
  ((1.0 -. p.wq) *. avg) +. (p.wq *. float_of_int occupancy)

let base_probability p ~avg =
  if avg < p.min_th then 0.0
  else if avg < p.max_th then p.max_p *. (avg -. p.min_th) /. (p.max_th -. p.min_th)
  else if p.gentle && avg < 2.0 *. p.max_th then
    (* Gentle ramp: max_p at max_th up to 1 at 2*max_th. *)
    p.max_p +. ((1.0 -. p.max_p) *. (avg -. p.max_th) /. p.max_th)
  else 1.0

let early_drop_probability p ~avg ~count =
  let pb = base_probability p ~avg in
  if pb <= 0.0 then 0.0
  else if pb >= 1.0 then 1.0
  else begin
    let denom = 1.0 -. (float_of_int (max 0 count) *. pb) in
    if denom <= 0.0 then 1.0 else Float.min 1.0 (pb /. denom)
  end

type verdict = [ `Enqueued | `Early_drop | `Forced_drop ]

let enqueue t ~now ~link_bw pkt =
  (* EWMA update, including idle decay if the queue was empty. *)
  if t.idle && Pktring.is_empty t.q then begin
    t.avg <- decay_avg t.p ~avg:t.avg ~idle:(now -. t.idle_since) ~link_bw;
    t.idle <- false
  end;
  t.avg <- update_avg t.p ~avg:t.avg ~occupancy:t.bytes;
  let decide () =
    let pb = base_probability t.p ~avg:t.avg in
    if pb <= 0.0 then begin
      t.count <- -1;
      `Admit
    end
    else if pb >= 1.0 then begin
      t.count <- 0;
      `Drop
    end
    else begin
      t.count <- t.count + 1;
      let pa = early_drop_probability t.p ~avg:t.avg ~count:t.count in
      if Random.State.float t.rng 1.0 < pa then begin
        t.count <- 0;
        `Drop
      end
      else `Admit
    end
  in
  match decide () with
  | `Drop -> `Early_drop
  | `Admit ->
      if t.bytes + pkt.Packet.size > t.p.limit_bytes then begin
        t.count <- 0;
        `Forced_drop
      end
      else begin
        Pktring.push t.q pkt;
        t.bytes <- t.bytes + pkt.Packet.size;
        `Enqueued
      end

(* pre: not empty *)
let dequeue_exn t ~now =
  let p = Pktring.pop_exn t.q in
  t.bytes <- t.bytes - p.Packet.size;
  if Pktring.is_empty t.q then begin
    t.idle <- true;
    t.idle_since <- now
  end;
  p

let dequeue t ~now =
  if Pktring.is_empty t.q then None else Some (dequeue_exn t ~now)
