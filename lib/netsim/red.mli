(** Random Early Detection queue (§6.5.1).

    Classic RED (Floyd & Jacobson): an EWMA of the queue size drives a
    probabilistic early drop between two thresholds, with the standard
    uniformization by the count of packets since the last drop — the
    "random number generated during the last packet drop" construction of
    Fig 6.10.  The deterministic parts of the algorithm ([update_avg],
    [early_drop_probability]) are exposed as pure functions so the
    Protocol χ validator can replay them from neighbours' traffic
    information; only the coin flips are private to the router. *)

type params = {
  limit_bytes : int;   (** physical queue limit *)
  min_th : float;      (** EWMA threshold where early drops begin, bytes *)
  max_th : float;      (** EWMA threshold where drops become certain *)
  max_p : float;       (** drop probability as the EWMA reaches max_th *)
  wq : float;          (** EWMA weight *)
  mean_pkt_size : int; (** for idle-time decay of the EWMA *)
  gentle : bool;       (** gentle RED: between max_th and 2*max_th the
                           drop probability ramps from max_p to 1 instead
                           of jumping *)
}

val default_params : params
(** limit 64000 B, min_th 30000 B, max_th 60000 B, max_p 0.1, wq 0.002,
    mean packet 1000 B, not gentle — the scale of the Emulab RED
    experiments. *)

type t

val create : ?params:params -> rng:Random.State.t -> unit -> t
(** Fresh RED queue.  Raises [Invalid_argument] on inconsistent
    thresholds. *)

val params : t -> params
val occupancy : t -> int
val avg : t -> float
(** Current EWMA of the queue size in bytes. *)

val count_since_drop : t -> int
val is_empty : t -> bool
val length : t -> int

type verdict = [ `Enqueued | `Early_drop | `Forced_drop ]

val enqueue : t -> now:float -> link_bw:float -> Packet.t -> verdict
(** Process an arrival: updates the EWMA, applies the early-drop rule,
    then the physical limit.  [link_bw] scales the idle-time decay. *)

val dequeue : t -> now:float -> Packet.t option
(** Remove the head packet, recording the idle start if emptied. *)

val dequeue_exn : t -> now:float -> Packet.t
(** {!dequeue} without the option box; the queue must not be empty. *)

(* Pure replay functions for the validator: *)

val decay_avg : params -> avg:float -> idle:float -> link_bw:float -> float
(** EWMA after an idle period. *)

val update_avg : params -> avg:float -> occupancy:int -> float
(** EWMA after an arrival sees [occupancy] bytes queued. *)

val early_drop_probability : params -> avg:float -> count:int -> float
(** The uniformized early-drop probability for the arriving packet given
    the EWMA and the packets-since-last-drop counter (0 below min_th, 1
    at/after max_th — or after 2*max_th for gentle RED). *)
