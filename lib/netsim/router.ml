type context = {
  now : float;
  prev : int option;
  next_hop : int;
  queue_occupancy : int;
  queue_limit : int;
  red_avg : float option;
}

type action =
  | Forward
  | Drop
  | Modify of int64
  | Delay of float

type behavior = context -> Packet.t -> action

let honest _ _ = Forward

type event =
  | Malicious_drop of { next : int; pkt : Packet.t }
  | Fragmented of { next : int; original : Packet.t; fragments : int }
  | Malicious_modify of { next : int; pkt : Packet.t; old_payload : int64 }
  | Malicious_delay of { next : int; pkt : Packet.t; delay : float }
  | Fabricated of { next : int; pkt : Packet.t }
  | No_route of Packet.t
  | Ttl_expired of Packet.t
  | Delivered_local of Packet.t

type t = {
  sim : Sim.t;
  id : int;
  jitter : unit -> float;
  fresh_uid : unit -> int;
  on_event : t -> event -> unit;
  local_deliver : Packet.t -> unit;
  release : Packet.t -> unit;  (* return a dead packet to its pool *)
  out : (int, Iface.t) Hashtbl.t;
  mutable observe : bool;
  (* prev is the previous-hop router id, -1 for locally originated: the
     int encoding keeps the per-hop path free of option boxes.  The
     public {!set_forwarding}/[behavior] surface keeps the option view. *)
  mutable forwarding : prev:int -> Packet.t -> int;
  mutable behavior : behavior;
  mutable mtu : int option;
  mcast : (int, int list * bool) Hashtbl.t; (* group -> (branches, local) *)
  (* Always-on per-router counters: plain integer bumps on the hot path,
     scraped by the telemetry layer at export time. *)
  mutable received_packets : int;
  mutable forwarded_packets : int;
  mutable delivered_packets : int;
}

let no_release (_ : Packet.t) = ()

let create ~sim ~id ~jitter ?fresh_uid ?(release = no_release) ~on_event
    ~local_deliver () =
  let fresh_uid =
    match fresh_uid with Some f -> f | None -> fun () -> Sim.fresh_id sim
  in
  { sim; id; jitter; fresh_uid; on_event; local_deliver; release;
    out = Hashtbl.create 4; observe = true;
    forwarding = (fun ~prev:_ _ -> -1); behavior = honest; mtu = None;
    mcast = Hashtbl.create 2;
    received_packets = 0; forwarded_packets = 0; delivered_packets = 0 }

let id t = t.id
let set_observe t v = t.observe <- v

let add_iface t iface =
  if Iface.owner iface <> t.id then invalid_arg "Router.add_iface: foreign interface";
  Hashtbl.replace t.out (Iface.next_hop iface) iface

let iface_to t next = Hashtbl.find_opt t.out next
let ifaces t = Hashtbl.fold (fun _ i acc -> i :: acc) t.out []

let set_forwarding_id t f = t.forwarding <- f

let set_forwarding t f =
  t.forwarding <-
    (fun ~prev pkt ->
      let prev = if prev < 0 then None else Some prev in
      match f ~prev pkt with Some next -> next | None -> -1)

let set_behavior t b = t.behavior <- b
let add_multicast_route t ~group ~next_hops ~local =
  List.iter
    (fun nh ->
      if not (Hashtbl.mem t.out nh) then
        invalid_arg "Router.add_multicast_route: no interface to a listed branch")
    next_hops;
  Hashtbl.replace t.mcast group (next_hops, local)

let set_mtu t m =
  (match m with
  | Some v when v <= 0 -> invalid_arg "Router.set_mtu: mtu must be positive"
  | _ -> ());
  t.mtu <- m

(* Post-jitter enqueue as a tagged event: the common forwarding step
   schedules nothing but (iface, packet) into the flat heap. *)
let tag_enqueue = ref 0

let () =
  tag_enqueue :=
    Sim.new_tag (fun _ a b _ -> Iface.enqueue (Obj.obj a) (Obj.obj b))

let enqueue_after_jitter t iface pkt =
  let j = t.jitter () in
  if j <= 0.0 then Iface.enqueue iface pkt
  else
    Sim.schedule_ev t.sim ~delay:j ~tag:!tag_enqueue ~i:0 (Obj.repr iface)
      (Obj.repr pkt)

(* §7.4.4: splitting produces fresh packets whose fingerprints no
   upstream router ever announced. *)
let fragment t ~next iface pkt mtu =
  let pieces = (pkt.Packet.size + mtu - 1) / mtu in
  if t.observe then
    t.on_event t (Fragmented { next; original = pkt; fragments = pieces });
  let remaining = ref pkt.Packet.size in
  for _ = 1 to pieces do
    let size = min mtu !remaining in
    remaining := !remaining - size;
    let frag =
      Packet.make ~sim:t.sim ~uid:(t.fresh_uid ()) ~src:pkt.Packet.src
        ~dst:pkt.Packet.dst ~flow:pkt.Packet.flow ~size ~ttl:pkt.Packet.ttl
        pkt.Packet.proto
    in
    (* Fragments stay on the original packet's trace: causally the
       same injection, even though their uids are fresh. *)
    frag.Packet.trace <- pkt.Packet.trace;
    enqueue_after_jitter t iface frag
  done;
  t.release pkt

let fragment_if_needed t ~next iface pkt =
  match t.mtu with
  | Some mtu when pkt.Packet.size > mtu -> fragment t ~next iface pkt mtu
  | Some _ | None -> enqueue_after_jitter t iface pkt

let forward_one t ~prev ~next pkt =
  match Hashtbl.find t.out next with
  | exception Not_found ->
      if t.observe then t.on_event t (No_route pkt) else t.release pkt
  | iface ->
      (* Honest routers — the overwhelmingly common case — skip the
         behavior context entirely: it exists to show a compromised
         forwarding plane its state, and building it costs boxes. *)
      if t.behavior == honest then begin
        t.forwarded_packets <- t.forwarded_packets + 1;
        fragment_if_needed t ~next iface pkt
      end
      else begin
        let ctx =
          { now = Sim.now t.sim;
            prev = (if prev < 0 then None else Some prev);
            next_hop = next;
            queue_occupancy = Iface.occupancy iface;
            queue_limit = Iface.queue_limit iface;
            red_avg = Option.map Red.avg (Iface.red_state iface) }
        in
        match t.behavior ctx pkt with
        | Forward ->
            t.forwarded_packets <- t.forwarded_packets + 1;
            fragment_if_needed t ~next iface pkt
        | Drop ->
            if t.observe then t.on_event t (Malicious_drop { next; pkt })
            else t.release pkt
        | Modify payload ->
            let old_payload = pkt.Packet.payload in
            pkt.Packet.payload <- payload;
            if t.observe then
              t.on_event t (Malicious_modify { next; pkt; old_payload });
            fragment_if_needed t ~next iface pkt
        | Delay d ->
            if t.observe then
              t.on_event t (Malicious_delay { next; pkt; delay = d });
            Sim.schedule t.sim ~delay:d (fun () ->
                fragment_if_needed t ~next iface pkt)
      end

let receive_prev t ~prev pkt =
  t.received_packets <- t.received_packets + 1;
  match Hashtbl.find_opt t.mcast pkt.Packet.dst with
  | Some (branches, local) ->
      (* Multicast: duplicate per branch (same identity, §7.4.3);
         deliver locally if this router is a leaf. *)
      let expired =
        prev >= 0
        && begin
             pkt.Packet.ttl <- pkt.Packet.ttl - 1;
             pkt.Packet.ttl <= 0
           end
      in
      if expired then begin
        if t.observe then t.on_event t (Ttl_expired pkt) else t.release pkt
      end
      else begin
        if local then begin
          t.delivered_packets <- t.delivered_packets + 1;
          if t.observe then t.on_event t (Delivered_local pkt);
          t.local_deliver pkt
        end;
        List.iter (fun next -> forward_one t ~prev ~next (Packet.clone pkt)) branches;
        t.release pkt
      end
  | None ->
  if pkt.Packet.dst = t.id then begin
    t.delivered_packets <- t.delivered_packets + 1;
    if t.observe then t.on_event t (Delivered_local pkt);
    t.local_deliver pkt;
    t.release pkt
  end
  else begin
    (* TTL is only spent on transit hops. *)
    let expired =
      prev >= 0
      && begin
           pkt.Packet.ttl <- pkt.Packet.ttl - 1;
           pkt.Packet.ttl <= 0
         end
    in
    if expired then begin
      if t.observe then t.on_event t (Ttl_expired pkt) else t.release pkt
    end
    else begin
      let next = t.forwarding ~prev pkt in
      if next < 0 then begin
        if t.observe then t.on_event t (No_route pkt) else t.release pkt
      end
      else forward_one t ~prev ~next pkt
    end
  end

let receive t ~prev pkt =
  receive_prev t ~prev:(match prev with None -> -1 | Some p -> p) pkt

let fabricate t ~next pkt =
  match iface_to t next with
  | None -> invalid_arg "Router.fabricate: no interface to that neighbour"
  | Some iface ->
      if t.observe then t.on_event t (Fabricated { next; pkt });
      Iface.enqueue iface pkt

let received_packets t = t.received_packets
let forwarded_packets t = t.forwarded_packets
let delivered_packets t = t.delivered_packets
