type context = {
  now : float;
  prev : int option;
  next_hop : int;
  queue_occupancy : int;
  queue_limit : int;
  red_avg : float option;
}

type action =
  | Forward
  | Drop
  | Modify of int64
  | Delay of float

type behavior = context -> Packet.t -> action

let honest _ _ = Forward

type event =
  | Malicious_drop of { next : int; pkt : Packet.t }
  | Fragmented of { next : int; original : Packet.t; fragments : int }
  | Malicious_modify of { next : int; pkt : Packet.t; old_payload : int64 }
  | Malicious_delay of { next : int; pkt : Packet.t; delay : float }
  | Fabricated of { next : int; pkt : Packet.t }
  | No_route of Packet.t
  | Ttl_expired of Packet.t
  | Delivered_local of Packet.t

type t = {
  sim : Sim.t;
  id : int;
  jitter : unit -> float;
  fresh_uid : unit -> int;
  on_event : t -> event -> unit;
  local_deliver : Packet.t -> unit;
  out : (int, Iface.t) Hashtbl.t;
  mutable forwarding : prev:int option -> Packet.t -> int option;
  mutable behavior : behavior;
  mutable mtu : int option;
  mcast : (int, int list * bool) Hashtbl.t; (* group -> (branches, local) *)
  (* Always-on per-router counters: plain integer bumps on the hot path,
     scraped by the telemetry layer at export time. *)
  mutable received_packets : int;
  mutable forwarded_packets : int;
  mutable delivered_packets : int;
}

let create ~sim ~id ~jitter ?fresh_uid ~on_event ~local_deliver () =
  let fresh_uid =
    match fresh_uid with Some f -> f | None -> fun () -> Sim.fresh_id sim
  in
  { sim; id; jitter; fresh_uid; on_event; local_deliver; out = Hashtbl.create 4;
    forwarding = (fun ~prev:_ _ -> None); behavior = honest; mtu = None;
    mcast = Hashtbl.create 2;
    received_packets = 0; forwarded_packets = 0; delivered_packets = 0 }

let id t = t.id

let add_iface t iface =
  if Iface.owner iface <> t.id then invalid_arg "Router.add_iface: foreign interface";
  Hashtbl.replace t.out (Iface.next_hop iface) iface

let iface_to t next = Hashtbl.find_opt t.out next
let ifaces t = Hashtbl.fold (fun _ i acc -> i :: acc) t.out []

let set_forwarding t f = t.forwarding <- f
let set_behavior t b = t.behavior <- b
let add_multicast_route t ~group ~next_hops ~local =
  List.iter
    (fun nh ->
      if not (Hashtbl.mem t.out nh) then
        invalid_arg "Router.add_multicast_route: no interface to a listed branch")
    next_hops;
  Hashtbl.replace t.mcast group (next_hops, local)

let set_mtu t m =
  (match m with
  | Some v when v <= 0 -> invalid_arg "Router.set_mtu: mtu must be positive"
  | _ -> ());
  t.mtu <- m

let enqueue_after_jitter t iface pkt =
  let j = t.jitter () in
  if j <= 0.0 then Iface.enqueue iface pkt
  else Sim.schedule t.sim ~delay:j (fun () -> Iface.enqueue iface pkt)

(* §7.4.4: splitting produces fresh packets whose fingerprints no
   upstream router ever announced. *)
let fragment_if_needed t ~next iface pkt =
  match t.mtu with
  | Some mtu when pkt.Packet.size > mtu ->
      let pieces = (pkt.Packet.size + mtu - 1) / mtu in
      t.on_event t (Fragmented { next; original = pkt; fragments = pieces });
      let remaining = ref pkt.Packet.size in
      for _ = 1 to pieces do
        let size = min mtu !remaining in
        remaining := !remaining - size;
        let frag =
          Packet.make ~sim:t.sim ~uid:(t.fresh_uid ()) ~src:pkt.Packet.src
            ~dst:pkt.Packet.dst ~flow:pkt.Packet.flow ~size ~ttl:pkt.Packet.ttl
            pkt.Packet.proto
        in
        (* Fragments stay on the original packet's trace: causally the
           same injection, even though their uids are fresh. *)
        frag.Packet.trace <- pkt.Packet.trace;
        enqueue_after_jitter t iface frag
      done
  | Some _ | None -> enqueue_after_jitter t iface pkt

let forward_one t ~prev ~next pkt =
  match iface_to t next with
  | None -> t.on_event t (No_route pkt)
  | Some iface ->
      let ctx =
        { now = Sim.now t.sim; prev; next_hop = next;
          queue_occupancy = Iface.occupancy iface;
          queue_limit = Iface.queue_limit iface;
          red_avg = Option.map Red.avg (Iface.red_state iface) }
      in
      (match t.behavior ctx pkt with
      | Forward ->
          t.forwarded_packets <- t.forwarded_packets + 1;
          fragment_if_needed t ~next iface pkt
      | Drop -> t.on_event t (Malicious_drop { next; pkt })
      | Modify payload ->
          let old_payload = pkt.Packet.payload in
          pkt.Packet.payload <- payload;
          t.on_event t (Malicious_modify { next; pkt; old_payload });
          fragment_if_needed t ~next iface pkt
      | Delay d ->
          t.on_event t (Malicious_delay { next; pkt; delay = d });
          Sim.schedule t.sim ~delay:d (fun () -> fragment_if_needed t ~next iface pkt))

let receive t ~prev pkt =
  t.received_packets <- t.received_packets + 1;
  match Hashtbl.find_opt t.mcast pkt.Packet.dst with
  | Some (branches, local) ->
      (* Multicast: duplicate per branch (same identity, §7.4.3);
         deliver locally if this router is a leaf. *)
      let expired =
        match prev with
        | None -> false
        | Some _ ->
            pkt.Packet.ttl <- pkt.Packet.ttl - 1;
            pkt.Packet.ttl <= 0
      in
      if expired then t.on_event t (Ttl_expired pkt)
      else begin
        if local then begin
          t.delivered_packets <- t.delivered_packets + 1;
          t.on_event t (Delivered_local pkt);
          t.local_deliver pkt
        end;
        List.iter (fun next -> forward_one t ~prev ~next (Packet.clone pkt)) branches
      end
  | None ->
  if pkt.Packet.dst = t.id then begin
    t.delivered_packets <- t.delivered_packets + 1;
    t.on_event t (Delivered_local pkt);
    t.local_deliver pkt
  end
  else begin
    (* TTL is only spent on transit hops. *)
    let expired =
      match prev with
      | None -> false
      | Some _ ->
          pkt.Packet.ttl <- pkt.Packet.ttl - 1;
          pkt.Packet.ttl <= 0
    in
    if expired then t.on_event t (Ttl_expired pkt)
    else begin
      match t.forwarding ~prev pkt with
      | None -> t.on_event t (No_route pkt)
      | Some next -> forward_one t ~prev ~next pkt
    end
  end

let fabricate t ~next pkt =
  match iface_to t next with
  | None -> invalid_arg "Router.fabricate: no interface to that neighbour"
  | Some iface ->
      t.on_event t (Fabricated { next; pkt });
      Iface.enqueue iface pkt

let received_packets t = t.received_packets
let forwarded_packets t = t.forwarded_packets
let delivered_packets t = t.delivered_packets
