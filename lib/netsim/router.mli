(** A router: forwarding, TTL handling, and the adversarial hook.

    A {e traffic-faulty} router (§2.2.1) alters the packets it forwards.
    Every way it can do so — dropping, modifying, delaying, fabricating —
    is expressed through the [behavior] hook, which sees exactly the
    state a compromised forwarding plane would see (the packet, where it
    came from, where it is going, and the output queue state) and decides
    what happens to the packet.  Correct routers use {!honest}. *)

type context = {
  now : float;
  prev : int option;        (** previous-hop router; [None] if originated here *)
  next_hop : int;
  queue_occupancy : int;    (** bytes in the output queue toward [next_hop] *)
  queue_limit : int;
  red_avg : float option;   (** RED EWMA when the queue is RED *)
}

type action =
  | Forward                 (** behave correctly *)
  | Drop                    (** maliciously discard (silent) *)
  | Modify of int64         (** overwrite the payload, then forward *)
  | Delay of float          (** hold for the given time, then forward *)

type behavior = context -> Packet.t -> action

val honest : behavior
(** Always [Forward]. *)

type event =
  | Malicious_drop of { next : int; pkt : Packet.t }
  | Fragmented of { next : int; original : Packet.t; fragments : int }
  | Malicious_modify of { next : int; pkt : Packet.t; old_payload : int64 }
  | Malicious_delay of { next : int; pkt : Packet.t; delay : float }
  | Fabricated of { next : int; pkt : Packet.t }
  | No_route of Packet.t
  | Ttl_expired of Packet.t
  | Delivered_local of Packet.t

type t

val create :
  sim:Sim.t ->
  id:int ->
  jitter:(unit -> float) ->
  ?fresh_uid:(unit -> int) ->
  ?release:(Packet.t -> unit) ->
  on_event:(t -> event -> unit) ->
  local_deliver:(Packet.t -> unit) ->
  unit ->
  t
(** [jitter ()] is the per-packet processing delay (the source of the
    queue-prediction error Protocol χ calibrates, §6.2.1).  [fresh_uid]
    overrides the uid source for packets the router itself mints
    (fragments); the sharded engine supplies a per-node stream so uids
    are independent of cross-shard interleaving.  Defaults to the
    simulation-global counter.  [release] (default: no-op) receives
    packets that die at this router while the network is unobserved —
    the pool-recycling hook. *)

val id : t -> int

val add_iface : t -> Iface.t -> unit
(** Register the output interface toward [Iface.next_hop].  Replaces any
    previous interface to the same neighbour. *)

val iface_to : t -> int -> Iface.t option
val ifaces : t -> Iface.t list

val set_forwarding : t -> (prev:int option -> Packet.t -> int option) -> unit
(** Install the forwarding decision (link-state or policy routing). *)

val set_forwarding_id : t -> (prev:int -> Packet.t -> int) -> unit
(** The allocation-free variant: previous hop and next hop are plain
    router ids with [-1] meaning "none" — what the per-packet path
    actually runs.  {!set_forwarding} is a wrapper over this. *)

val set_observe : t -> bool -> unit
(** Whether anything consumes this router's events.  [false] elides
    event construction on the hot path and hands terminal packets
    (local delivery, TTL expiry, no-route, malicious drop) to the
    [release] hook.  Fixed before the run; {!Net} manages it. *)

val set_behavior : t -> behavior -> unit
(** Compromise (or restore) the router. *)

val add_multicast_route :
  t -> group:int -> next_hops:int list -> local:bool -> unit
(** Join the distribution tree of multicast [group] (a virtual
    destination id): packets addressed to it are duplicated onto each
    listed interface (the behavior hook runs per branch, so a
    compromised router can prune branches selectively) and delivered
    locally when [local].  §7.4.3: note the deliberate violation of
    naive per-router conservation of flow. *)

val set_mtu : t -> int option -> unit
(** Limit the payload this router forwards per packet: oversized packets
    are split into fresh fragments (§7.4.4 — fragmentation invalidates
    upstream fingerprints, which is why the protocols require
    don't-fragment paths; see test_extensions.ml for the resulting false
    positives). *)

val receive : t -> prev:int option -> Packet.t -> unit
(** Packet arrival: local delivery or forwarding through the behavior
    hook.  [prev = None] means the packet originates at this router. *)

val receive_prev : t -> prev:int -> Packet.t -> unit
(** {!receive} with the int encoding ([-1] = originated here): the
    engine-internal arrival path, free of option boxes. *)

val fabricate : t -> next:int -> Packet.t -> unit
(** Inject a packet the router made up straight into an output queue
    (packet-fabrication attack); emits [Fabricated]. *)

val received_packets : t -> int
(** Packets handed to this router (originations and arrivals; always-on
    per-router counter, scraped by the telemetry layer). *)

val forwarded_packets : t -> int
(** Packets the router's behavior forwarded toward a next hop. *)

val delivered_packets : t -> int
(** Packets delivered to this router's local applications. *)
