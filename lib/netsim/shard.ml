(* Conservative-synchronization parallel discrete-event engine.

   The router graph is partitioned into K contiguous regions (multi-source
   BFS from evenly spaced seeds).  Each shard owns one deterministic-rank
   [Sim.t] heap and runs on its own domain; a separate control-plane sim
   (detectors, TCP endpoints, fault injector) runs on the coordinator.

   Synchronization is the classic null-message/time-window scheme: within
   an epoch the coordinator repeatedly (1) drains every cross-shard
   mailbox into the destination heaps, (2) computes T_min, the earliest
   pending data event anywhere, and (3) lets all shards run the half-open
   window [.., min (T_min + lookahead, epoch_end)) in parallel, where
   lookahead is the minimum latency of any cross-shard link.  A packet
   handed to a cross-shard link at time t arrives no earlier than
   t + lookahead >= T_min + lookahead, i.e. never inside the window that
   produced it, so each shard can process its window without hearing from
   the others — the conservative guarantee.

   Determinism (byte-identical output for any K) rests on three
   invariants, each K-independent by construction:
   - every event carries a causal rank ({!Sim} det mode), so same-time
     events merge in one global order no matter which heap held them;
   - all control-plane work and all observation delivery happen at epoch
     boundaries, where every shard clock equals the boundary exactly;
   - observations emitted inside windows are buffered per shard with
     their (time, rank, emission index) key and k-way merged with
     control events at the flush, so probes/journals/traces see the
     exact single-heap order. *)

type obs =
  | Obs_iface of { router : int; next : int; kind : Iface.event }
  | Obs_router of { router : int; kind : Router.event }
  | Obs_originate of Packet.t
  | Obs_app of { node : int; pkt : Packet.t }

type obs_rec = { at : float; rank : int; ix : int; obs : obs }

(* A cross-shard handoff travels as a flat tagged-event descriptor, not
   a closure: the receive step is a registered {!Sim} tag plus two
   payload words, so posting allocates one message record and nothing
   else. *)
type msg = {
  time : float;
  rank : int;
  dest : int;
  tag : int;
  i : int;
  a : Obj.t;
  b : Obj.t;
}

(* Minimal growable buffer (no Dynarray on this compiler).  [clear]
   keeps the backing array — the per-epoch observation buffers reach a
   steady-state capacity once and are reused for the rest of the run —
   but scrubs the vacated slots so cleared records stay collectable. *)
module Buf = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let push t x =
    let cap = Array.length t.arr in
    if t.len = cap then begin
      let arr = Array.make (max 64 (2 * cap)) x in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
    end;
    t.arr.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.arr.(i)
  let length t = t.len

  let clear t =
    if t.len > 0 then Array.fill t.arr 0 t.len (Obj.magic 0);
    t.len <- 0
end

(* Which shard the calling domain is executing a window for; -1 on the
   coordinator outside windows.  Lets [Net]'s event callbacks decide
   between buffering (inside a window) and direct delivery (at a
   barrier) without threading a context through every closure. *)
let me_key = Domain.DLS.new_key (fun () -> -1)
let current () = Domain.DLS.get me_key
let in_window () = current () >= 0

type t = {
  k : int;
  owner : int array; (* router -> shard *)
  sims : Sim.t array; (* one data-plane heap per shard *)
  ctrl : Sim.t; (* control plane, coordinator only *)
  lookahead : float; (* min cross-shard link latency; infinity when none *)
  epoch : float;
  outbox : msg Mailbox.t array; (* per *source* shard *)
  obs_bufs : obs_rec Buf.t array; (* per shard, flushed each epoch *)
  mutable next_epoch : float;
  mutable windows : int;
  mutable epochs : int;
}

let k t = t.k
let owner t router = t.owner.(router)
let shard_sim t s = t.sims.(s)
let ctrl_sim t = t.ctrl
let lookahead t = t.lookahead
let epoch t = t.epoch
let windows_run t = t.windows
let epochs_run t = t.epochs

let cross_messages t =
  Array.fold_left (fun acc m -> acc + Mailbox.pushed m) 0 t.outbox

(* Contiguous partition: BFS outward from k evenly spaced seed routers,
   expanding the k frontiers round-robin so regions stay balanced.
   Disconnected leftovers are seeded deterministically into the
   currently smallest shard. *)
let partition graph ~k =
  let n = Topology.Graph.size graph in
  if k < 1 then invalid_arg "Shard.partition: need at least one shard";
  if k > n then
    invalid_arg
      (Printf.sprintf "Shard.partition: %d shards for %d routers" k n);
  let owner = Array.make n (-1) in
  let sizes = Array.make k 0 in
  let queues = Array.init k (fun _ -> Queue.create ()) in
  let assign s v =
    owner.(v) <- s;
    sizes.(s) <- sizes.(s) + 1;
    Queue.add v queues.(s)
  in
  for s = 0 to k - 1 do
    assign s (s * n / k)
  done;
  let remaining = ref (n - k) in
  while !remaining > 0 do
    let moved = ref false in
    for s = 0 to k - 1 do
      if not (Queue.is_empty queues.(s)) then begin
        let v = Queue.pop queues.(s) in
        List.iter
          (fun w ->
            if owner.(w) < 0 then begin
              assign s w;
              decr remaining;
              moved := true
            end)
          (Topology.Graph.out_neighbors graph v);
        (* Keep the frontier alive until all its neighbours are taken. *)
        if List.exists (fun w -> owner.(w) < 0) (Topology.Graph.out_neighbors graph v)
        then Queue.add v queues.(s)
      end
    done;
    if (not !moved) && Array.for_all Queue.is_empty queues then begin
      (* Disconnected component: seed the smallest shard at the first
         unowned router. *)
      let s = ref 0 in
      for i = 1 to k - 1 do
        if sizes.(i) < sizes.(!s) then s := i
      done;
      let v = ref 0 in
      while owner.(!v) >= 0 do
        incr v
      done;
      assign !s !v;
      decr remaining
    end
  done;
  owner

let min_cross_latency graph owner =
  List.fold_left
    (fun acc (l : Topology.Graph.link) ->
      if owner.(l.src) <> owner.(l.dst) then Float.min acc l.delay else acc)
    Float.infinity (Topology.Graph.links graph)

let create ~seed ?(epoch = 0.1) ~graph ~k () =
  if epoch <= 0.0 then invalid_arg "Shard.create: epoch must be positive";
  let owner = partition graph ~k in
  let lookahead = min_cross_latency graph owner in
  if k > 1 && lookahead <= 0.0 then
    invalid_arg
      "Shard.create: a zero-latency cross-shard link leaves no lookahead \
       (conservative synchronization needs every cross-shard link delay > 0)";
  (* Fresh root-rank context so consecutive engines in one process draw
     identical setup-event ranks. *)
  Sim.reset_det_context ();
  { k; owner;
    sims = Array.init k (fun s -> Sim.create ~seed:(seed + (7919 * (s + 1))) ~det:true ());
    ctrl = Sim.create ~seed ~det:true ();
    lookahead; epoch;
    outbox = Array.init k (fun _ -> Mailbox.create ~capacity:8192);
    obs_bufs = Array.init k (fun _ -> Buf.create ());
    next_epoch = epoch; windows = 0; epochs = 0 }

let record t obs =
  let s = current () in
  let sim = t.sims.(s) in
  Buf.push t.obs_bufs.(s)
    { at = Sim.now sim; rank = Sim.current_rank (); ix = Sim.next_obs_ix (); obs }

let post t ~dest ~time ~rank ~tag ~i a b =
  let s = current () in
  if s = dest || s < 0 then
    (* Same shard, or coordinator context at a barrier: the destination
       heap is not being mutated by anyone else — schedule directly. *)
    Sim.schedule_ev_ranked t.sims.(dest) ~time ~rank ~tag ~i a b
  else Mailbox.push t.outbox.(s) { time; rank; dest; tag; i; a; b }

let drain_mailboxes t =
  Array.iter
    (fun box ->
      Mailbox.drain box (fun m ->
          Sim.schedule_ev_ranked t.sims.(m.dest) ~time:m.time ~rank:m.rank
            ~tag:m.tag ~i:m.i m.a m.b))
    t.outbox

let data_min t =
  Array.fold_left
    (fun acc sim ->
      match Sim.next_key sim with
      | None -> acc
      | Some (time, _) -> Float.min acc time)
    Float.infinity t.sims

(* ------------------------------------------------------------------ *)
(* Worker pool: K-1 domains, one per shard >= 1 (shard 0 runs inline on
   the coordinator).  Jobs are handed over a per-worker mutex/condvar
   pair; the same pair signals completion back.  An exception inside a
   window is captured and re-raised on the coordinator after the
   barrier, so a crashing detector assertion behaves like the
   single-domain engine (and the flight recorder still fires). *)

type job = Window of { until : float; inclusive : bool } | Quit

type worker = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable job : job option;
  mutable done_ : bool;
  mutable err : exn option;
}

type pool = Inline | Domains of worker array * unit Domain.t array

let worker_loop t s w =
  Domain.DLS.set me_key s;
  let stop = ref false in
  while not !stop do
    Mutex.lock w.mu;
    while w.job = None do
      Condition.wait w.cv w.mu
    done;
    let job = Option.get w.job in
    w.job <- None;
    Mutex.unlock w.mu;
    (match job with
    | Quit -> stop := true
    | Window { until; inclusive } -> (
        try Sim.run_window t.sims.(s) ~until ~inclusive
        with e -> w.err <- Some e));
    Mutex.lock w.mu;
    w.done_ <- true;
    Condition.signal w.cv;
    Mutex.unlock w.mu
  done

let make_pool t =
  if t.k = 1 then Inline
  else begin
    let workers =
      Array.init (t.k - 1) (fun _ ->
          { mu = Mutex.create (); cv = Condition.create (); job = None; done_ = false;
            err = None })
    in
    let domains =
      Array.init (t.k - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1) workers.(i)))
    in
    Domains (workers, domains)
  end

let dispatch w job =
  Mutex.lock w.mu;
  w.job <- Some job;
  w.done_ <- false;
  Condition.signal w.cv;
  Mutex.unlock w.mu

let await w =
  Mutex.lock w.mu;
  while not w.done_ do
    Condition.wait w.cv w.mu
  done;
  Mutex.unlock w.mu

let shutdown_pool = function
  | Inline -> ()
  | Domains (workers, domains) ->
      Array.iter (fun w -> dispatch w Quit) workers;
      Array.iter Domain.join domains

(* Run the window [.., until) (inclusive at the final horizon) on every
   shard in parallel; shard 0 executes inline on the coordinator. *)
let window t pool ~until ~inclusive =
  t.windows <- t.windows + 1;
  (match pool with
  | Inline ->
      Domain.DLS.set me_key 0;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set me_key (-1))
        (fun () -> Sim.run_window t.sims.(0) ~until ~inclusive)
  | Domains (workers, _) ->
      Array.iter (fun w -> dispatch w (Window { until; inclusive })) workers;
      let inline_err =
        Domain.DLS.set me_key 0;
        match Sim.run_window t.sims.(0) ~until ~inclusive with
        | () ->
            Domain.DLS.set me_key (-1);
            None
        | exception e ->
            Domain.DLS.set me_key (-1);
            Some e
      in
      Array.iter await workers;
      (match inline_err with Some e -> raise e | None -> ());
      Array.iter (fun w -> match w.err with Some e -> w.err <- None; raise e | None -> ()) workers);
  (* A window leaves every shard clock at [until]; scheduling done at
     the barrier (control plane, mailbox drains) sees one global time. *)
  Array.iter (fun sim -> Sim.set_time sim until) t.sims

let obs_key r = (r.at, r.rank, r.ix)

(* Flush one epoch: merge the per-shard observation buffers with pending
   control events (<= boundary) in (time, rank, ix) order, delivering
   each through [emit] / running each control event inline.  Runs on the
   coordinator at a barrier, so emits may touch probes, journals,
   listeners and the network freely. *)
let flush t ~boundary ~emit =
  let idx = Array.make t.k 0 in
  let next_obs () =
    let best = ref None in
    for s = 0 to t.k - 1 do
      if idx.(s) < Buf.length t.obs_bufs.(s) then begin
        let r = Buf.get t.obs_bufs.(s) idx.(s) in
        match !best with
        | Some (_, r') when obs_key r' <= obs_key r -> ()
        | _ -> best := Some (s, r)
      end
    done;
    !best
  in
  let rec loop () =
    let ctrl_next = Sim.next_key t.ctrl in
    match (next_obs (), ctrl_next) with
    | Some (s, r), Some (tc, rc)
      when tc <= boundary && (tc, rc, 0) <= obs_key r ->
        ignore s;
        Sim.run_next t.ctrl;
        loop ()
    | Some (s, r), _ ->
        idx.(s) <- idx.(s) + 1;
        emit r;
        loop ()
    | None, Some (tc, _) when tc <= boundary ->
        Sim.run_next t.ctrl;
        loop ()
    | None, _ -> ()
  in
  loop ();
  Array.iter Buf.clear t.obs_bufs;
  Sim.set_time t.ctrl boundary

(* Advance every shard to [boundary], then flush.  [final] switches the
   last window to inclusive and keeps looping until no event <= boundary
   remains anywhere (a cross-shard handoff emitted during an inclusive
   window can land exactly at the horizon and must still run). *)
let advance_to t pool ~boundary ~final ~emit =
  let continue = ref true in
  while !continue do
    drain_mailboxes t;
    let tmin = data_min t in
    if tmin < boundary || (final && tmin <= boundary) then begin
      let until = Float.min (tmin +. t.lookahead) boundary in
      let inclusive = final && until >= boundary in
      window t pool ~until ~inclusive
    end
    else continue := false
  done;
  Array.iter (fun sim -> Sim.set_time sim boundary) t.sims;
  t.epochs <- t.epochs + 1;
  flush t ~boundary ~emit

let pending t =
  Array.fold_left (fun acc sim -> acc + Sim.pending sim) (Sim.pending t.ctrl) t.sims

let mail_pending t = Array.exists (fun m -> not (Mailbox.is_empty m)) t.outbox

let run ?until ?on_epoch t ~emit =
  let pool = make_pool t in
  Fun.protect
    ~finally:(fun () -> shutdown_pool pool)
    (fun () ->
      let epoch_done boundary =
        match on_epoch with None -> () | Some f -> f ~now:boundary
      in
      match until with
      | Some horizon ->
          while t.next_epoch < horizon do
            advance_to t pool ~boundary:t.next_epoch ~final:false ~emit;
            epoch_done t.next_epoch;
            t.next_epoch <- t.next_epoch +. t.epoch
          done;
          advance_to t pool ~boundary:horizon ~final:true ~emit;
          epoch_done horizon;
          while t.next_epoch <= horizon do
            t.next_epoch <- t.next_epoch +. t.epoch
          done
      | None ->
          (* No horizon: step epochs until the whole engine is quiescent. *)
          while pending t > 0 || mail_pending t do
            advance_to t pool ~boundary:t.next_epoch ~final:false ~emit;
            epoch_done t.next_epoch;
            t.next_epoch <- t.next_epoch +. t.epoch
          done)

let events_processed t =
  Array.fold_left
    (fun acc sim -> acc + Sim.events_processed sim)
    (Sim.events_processed t.ctrl)
    t.sims

let cpu_time_in_run t =
  Array.fold_left
    (fun acc sim -> acc +. Sim.cpu_time_in_run sim)
    (Sim.cpu_time_in_run t.ctrl)
    t.sims
