(** Conservative-synchronization parallel discrete-event engine.

    Partitions the router graph into K contiguous regions (multi-source
    BFS from evenly spaced seeds — the per-segment locality the
    path-segment protocols already exploit), runs each region's events
    on its own domain with its own {!Prioq} heap, and exchanges
    cross-shard packet handoffs through lock-free bounded mailboxes
    ({!Mailbox}).

    {2 Synchronization}

    Null-message/time-window scheme with lookahead equal to the minimum
    cross-shard link latency: within an epoch the coordinator repeatedly
    drains all mailboxes, computes the earliest pending data event
    [T_min] over all shards, and runs every shard in parallel through
    the half-open window [[.., min (T_min + lookahead, epoch_end))].  A
    packet handed to a cross-shard link at [t] arrives no earlier than
    [t + lookahead], i.e. beyond the window that produced it, so no
    shard ever needs to wait for another inside a window.

    {2 Determinism contract}

    Output is byte-identical for every K >= 1 — same verdicts, same
    journal, same trace.  Three mechanisms carry the proof obligation:
    every event is keyed by a causal, partition-independent rank
    ({!Sim} deterministic mode); all control-plane work (detectors, TCP,
    fault injection) and all observation delivery happen at epoch
    boundaries where every shard clock is exactly the boundary; and
    observations emitted inside windows are buffered per shard and
    k-way merged by (time, rank, emission index) at the flush, so the
    telemetry layer replays the exact single-heap order.  K = 1 is the
    sequential reference of the same engine (one shard, no domains
    spawned beyond the coordinator).

    The classic single-heap engine remains available (and untouched) via
    [Net.create] without [~shards]. *)

type obs =
  | Obs_iface of { router : int; next : int; kind : Iface.event }
  | Obs_router of { router : int; kind : Router.event }
  | Obs_originate of Packet.t
  | Obs_app of { node : int; pkt : Packet.t }
      (** One data-plane observation, buffered inside a window and
          delivered at the epoch flush. *)

type obs_rec = { at : float; rank : int; ix : int; obs : obs }
(** An observation with its merge key: emission time, rank of the
    emitting event, emission index within that event. *)

type t

val partition : Topology.Graph.t -> k:int -> int array
(** [partition g ~k].(router) is the shard owning the router: contiguous
    regions grown breadth-first from k evenly spaced seeds, leftovers of
    disconnected components folded into the smallest shard.
    Deterministic.  Raises [Invalid_argument] unless
    [1 <= k <= size g]. *)

val create :
  seed:int -> ?epoch:float -> graph:Topology.Graph.t -> k:int -> unit -> t
(** Build an engine: K deterministic-rank shard heaps (seeds derived
    from [seed]) plus a control heap.  [epoch] is the control quantum in
    seconds (default 0.1).  Raises [Invalid_argument] for [k] outside
    [1..size graph], a non-positive epoch, or a zero-latency cross-shard
    link (which would leave no lookahead). *)

val k : t -> int
val owner : t -> int -> int
(** Shard owning a router. *)

val shard_sim : t -> int -> Sim.t
(** A shard's data-plane heap. *)

val ctrl_sim : t -> Sim.t
(** The coordinator's control-plane heap. *)

val lookahead : t -> float
(** Minimum cross-shard link latency ([infinity] when nothing crosses —
    e.g. K = 1). *)

val epoch : t -> float

val current : unit -> int
(** Shard the calling domain is running a window for; [-1] on the
    coordinator between windows. *)

val in_window : unit -> bool
(** Whether the calling domain is inside a shard window (observations
    must be buffered) as opposed to a barrier (direct delivery). *)

val record : t -> obs -> unit
(** Buffer an observation from inside a window, keyed by the current
    simulation time, executing event's rank and emission index.  Must
    only be called when {!in_window}. *)

val post :
  t ->
  dest:int -> time:float -> rank:int -> tag:int -> i:int ->
  Obj.t -> Obj.t -> unit
(** Schedule a tagged event ({!Sim.new_tag}) onto shard [dest]'s heap:
    directly when the caller is [dest] itself or the coordinator at a
    barrier, through the calling shard's mailbox otherwise.  The flat
    descriptor replaces the closure the handoff used to box:
    [time]/[rank] were computed by the sender (at transmit-start), so
    the destination key is identical for every K. *)

val run :
  ?until:float -> ?on_epoch:(now:float -> unit) -> t -> emit:(obs_rec -> unit) -> unit
(** Drive the engine to [until] (or to quiescence).  Spawns K-1 worker
    domains for the run; shard 0 executes on the coordinator.  [emit]
    delivers each buffered observation at the epoch flushes, merged with
    control events in (time, rank) order.  [on_epoch] fires after each
    flush with the boundary time.  Subsequent calls continue the epoch
    grid, so splitting one horizon into several calls at epoch-aligned
    points preserves determinism.  An exception raised by any shard or
    control event is re-raised here after the workers quiesce. *)

val events_processed : t -> int
(** Events executed, summed over shard heaps and the control heap. *)

val cpu_time_in_run : t -> float
(** Processor seconds inside event loops, summed over domains. *)

val windows_run : t -> int
(** Parallel windows executed (synchronization barriers paid). *)

val epochs_run : t -> int
(** Epoch flushes performed. *)

val cross_messages : t -> int
(** Cross-shard handoffs that travelled through a mailbox. *)
