(* Deterministic-rank context, one per domain.

   The sharded engine needs every event to carry a tie-break key that is
   identical for any shard count K: the obvious per-heap sequence number
   depends on which shard inserted the event and in what order, so it
   cannot be used.  Instead each event gets a rank derived purely from
   its *causal* position — rank = mix (parent rank, i) for the i-th
   event scheduled while executing the parent, and mix (0, i) for the
   i-th root event scheduled outside any event (setup code).  The mix is
   a splitmix64-style finalizer truncated to a non-negative OCaml int
   (62 bits), so ranks are effectively collision-free and, crucially,
   K-invariant: the causal tree of events does not depend on how routers
   are partitioned.

   The context lives in domain-local storage so each shard domain tracks
   its own executing event without synchronization. *)
module Det = struct
  type ctx = {
    mutable active : bool;  (* currently executing an event *)
    mutable parent : int;   (* rank of the executing event *)
    mutable child_ix : int; (* events scheduled by the executing event *)
    mutable obs_ix : int;   (* observations emitted by the executing event *)
    mutable root_ix : int;  (* root events scheduled outside any event *)
  }

  let key =
    Domain.DLS.new_key (fun () ->
        { active = false; parent = 0; child_ix = 0; obs_ix = 0; root_ix = 0 })

  let ctx () = Domain.DLS.get key

  let mix a b =
    let z =
      let open Int64 in
      let z = add (mul (of_int a) 0x9E3779B97F4A7C15L) (of_int (b + 1)) in
      let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
      logxor z (shift_right_logical z 31)
    in
    Int64.to_int z land max_int

  let fresh_rank () =
    let c = ctx () in
    if c.active then begin
      let i = c.child_ix in
      c.child_ix <- i + 1;
      mix c.parent i
    end
    else begin
      let i = c.root_ix in
      c.root_ix <- i + 1;
      mix 0 i
    end

  let reset () =
    let c = ctx () in
    c.active <- false;
    c.parent <- 0;
    c.child_ix <- 0;
    c.obs_ix <- 0;
    c.root_ix <- 0

  let enter rank =
    let c = ctx () in
    c.active <- true;
    c.parent <- rank;
    c.child_ix <- 0;
    c.obs_ix <- 0

  let leave () = (ctx ()).active <- false
end

type t = {
  mutable clock : float;
  events : (unit -> unit) Prioq.t;
  rng : Random.State.t;
  mutable processed : int;
  mutable next_id : int;
  mutable run_cpu : float;
  det : bool;
}

let create ?(seed = 1) ?(det = false) () =
  { clock = 0.0; events = Prioq.create (); rng = Random.State.make [| seed; 0x51a7 |];
    processed = 0; next_id = 0; run_cpu = 0.0; det }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time thunk =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %.9f is in the past (now %.9f)" time t.clock);
  let priority = Float.max time t.clock in
  if t.det then Prioq.push_ranked t.events ~priority ~rank:(Det.fresh_rank ()) thunk
  else Prioq.push t.events ~priority thunk

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) thunk

let schedule_ranked t ~time ~rank thunk =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_ranked: time %.9f is in the past (now %.9f)" time
         t.clock);
  Prioq.push_ranked t.events ~priority:(Float.max time t.clock) ~rank thunk

let fresh_rank _t = Det.fresh_rank ()
let reset_det_context () = Det.reset ()
let current_rank () = (Det.ctx ()).parent

let next_obs_ix () =
  let c = Det.ctx () in
  let i = c.obs_ix in
  c.obs_ix <- i + 1;
  i

let exec t time rank thunk =
  t.clock <- time;
  t.processed <- t.processed + 1;
  if t.det then begin
    Det.enter rank;
    Fun.protect ~finally:Det.leave thunk
  end
  else thunk ()

let run ?until t =
  let cpu0 = Sys.time () in
  (* Single heap traversal per event: pop_ranked replaces the former
     peek-then-pop pair. *)
  let limit = match until with None -> Float.infinity | Some u -> u in
  let continue = ref true in
  while !continue do
    match Prioq.pop_ranked t.events ~until:limit ~strict:false with
    | None -> continue := false
    | Some (time, rank, thunk) -> exec t time rank thunk
  done;
  t.run_cpu <- t.run_cpu +. (Sys.time () -. cpu0);
  match until with Some u when u > t.clock -> t.clock <- u | _ -> ()

let run_window t ~until ~inclusive =
  let cpu0 = Sys.time () in
  let continue = ref true in
  while !continue do
    match Prioq.pop_ranked t.events ~until ~strict:(not inclusive) with
    | None -> continue := false
    | Some (time, rank, thunk) -> exec t time rank thunk
  done;
  t.run_cpu <- t.run_cpu +. (Sys.time () -. cpu0);
  if until > t.clock then t.clock <- until

let next_key t = Prioq.peek_key t.events

let run_next t =
  match Prioq.pop_ranked t.events ~until:Float.infinity ~strict:false with
  | None -> ()
  | Some (time, rank, thunk) -> exec t time rank thunk

let set_time t time = if time > t.clock then t.clock <- time

let events_processed t = t.processed
let pending t = Prioq.length t.events
let cpu_time_in_run t = t.run_cpu

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id
