(* Deterministic-rank context, one per domain.

   The sharded engine needs every event to carry a tie-break key that is
   identical for any shard count K: the obvious per-heap sequence number
   depends on which shard inserted the event and in what order, so it
   cannot be used.  Instead each event gets a rank derived purely from
   its *causal* position — rank = mix (parent rank, i) for the i-th
   event scheduled while executing the parent, and mix (0, i) for the
   i-th event scheduled outside any event (setup code).  The mix is
   a splitmix64-style finalizer truncated to a non-negative OCaml int
   (62 bits), so ranks are effectively collision-free and, crucially,
   K-invariant: the causal tree of events does not depend on how routers
   are partitioned.

   The context lives in domain-local storage so each shard domain tracks
   its own executing event without synchronization. *)
module Det = struct
  type ctx = {
    mutable active : bool;  (* currently executing an event *)
    mutable parent : int;   (* rank of the executing event *)
    mutable child_ix : int; (* events scheduled by the executing event *)
    mutable obs_ix : int;   (* observations emitted by the executing event *)
    mutable root_ix : int;  (* root events scheduled outside any event *)
  }

  let key =
    Domain.DLS.new_key (fun () ->
        { active = false; parent = 0; child_ix = 0; obs_ix = 0; root_ix = 0 })

  let ctx () = Domain.DLS.get key

  let mix a b =
    let z =
      let open Int64 in
      let z = add (mul (of_int a) 0x9E3779B97F4A7C15L) (of_int (b + 1)) in
      let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
      let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
      logxor z (shift_right_logical z 31)
    in
    Int64.to_int z land max_int

  let fresh_rank () =
    let c = ctx () in
    if c.active then begin
      let i = c.child_ix in
      c.child_ix <- i + 1;
      mix c.parent i
    end
    else begin
      let i = c.root_ix in
      c.root_ix <- i + 1;
      mix 0 i
    end

  let reset () =
    let c = ctx () in
    c.active <- false;
    c.parent <- 0;
    c.child_ix <- 0;
    c.obs_ix <- 0;
    c.root_ix <- 0

  let enter rank =
    let c = ctx () in
    c.active <- true;
    c.parent <- rank;
    c.child_ix <- 0;
    c.obs_ix <- 0

  let leave () = (ctx ()).active <- false
end

module Ev = Prioq.Event

type t = {
  clock : Ev.fbox;       (* flat box: advancing the clock never allocates *)
  events : Ev.t;
  cursor : Ev.cursor;    (* reused by every pop of this heap *)
  rng : Random.State.t;
  mutable processed : int;
  mutable next_id : int;
  mutable run_cpu : float;
  det : bool;
}

(* Tag-handler registry: event kinds the engine schedules without boxing
   a closure.  Handlers are installed at module-initialization time
   (single-threaded), the table is read-only afterwards, so shard
   domains dispatch through it without synchronization.  Tag 0 is the
   legacy closure event: payload A is the thunk itself. *)
let handlers : (t -> Obj.t -> Obj.t -> int -> unit) array ref =
  ref (Array.make 8 (fun _ _ _ _ -> ()))

let handler_count = ref 1

let new_tag f =
  let tag = !handler_count in
  if tag > 0xff then invalid_arg "Sim.new_tag: tag space exhausted";
  if tag >= Array.length !handlers then begin
    let bigger = Array.make (2 * Array.length !handlers) (fun _ _ _ _ -> ()) in
    Array.blit !handlers 0 bigger 0 (Array.length !handlers);
    handlers := bigger
  end;
  !handlers.(tag) <- f;
  handler_count := tag + 1;
  tag

let nil = Ev.nil

let create ?(seed = 1) ?(det = false) () =
  { clock = { Ev.f = 0.0 }; events = Ev.create (); cursor = Ev.cursor ();
    rng = Random.State.make [| seed; 0x51a7 |];
    processed = 0; next_id = 0; run_cpu = 0.0; det }

let now t = t.clock.Ev.f
let rng t = t.rng

(* --- scheduling ----------------------------------------------------- *)

let past_check t time what =
  if time < t.clock.Ev.f -. 1e-12 then
    invalid_arg
      (Printf.sprintf "%s: time %.9f is in the past (now %.9f)" what time
         t.clock.Ev.f)

let schedule_ev_at t ~time ~tag ~i a b =
  past_check t time "Sim.schedule_at";
  let time = Float.max time t.clock.Ev.f in
  if t.det then
    Ev.push_ranked t.events ~time ~rank:(Det.fresh_rank ()) ~tag ~iarg:i a b
  else Ev.push t.events ~time ~tag ~iarg:i a b

let schedule_ev t ~delay ~tag ~i a b =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_ev_at t ~time:(t.clock.Ev.f +. delay) ~tag ~i a b

let schedule_ev_ranked t ~time ~rank ~tag ~i a b =
  past_check t time "Sim.schedule_ranked";
  Ev.push_ranked t.events ~time:(Float.max time t.clock.Ev.f) ~rank ~tag
    ~iarg:i a b

let schedule_at t ~time thunk =
  schedule_ev_at t ~time ~tag:0 ~i:0 (Obj.repr thunk) nil

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_ev_at t ~time:(t.clock.Ev.f +. delay) ~tag:0 ~i:0 (Obj.repr thunk)
    nil

let schedule_ranked t ~time ~rank thunk =
  schedule_ev_ranked t ~time ~rank ~tag:0 ~i:0 (Obj.repr thunk) nil

let fresh_rank _t = Det.fresh_rank ()
let reset_det_context () = Det.reset ()
let current_rank () = (Det.ctx ()).parent

let next_obs_ix () =
  let c = Det.ctx () in
  let i = c.obs_ix in
  c.obs_ix <- i + 1;
  i

(* --- the dispatch loop ---------------------------------------------- *)

let dispatch t (c : Ev.cursor) =
  let tag = c.Ev.tag in
  let a = c.Ev.pa and b = c.Ev.pb in
  (* Drop the cursor's references before running the event: the handler
     may run arbitrarily long and the payloads must not out-live it. *)
  c.Ev.pa <- nil;
  c.Ev.pb <- nil;
  if tag = 0 then (Obj.obj a : unit -> unit) ()
  else (Array.unsafe_get !handlers tag) t a b c.Ev.iarg

let exec t (c : Ev.cursor) =
  t.clock.Ev.f <- c.Ev.time.Ev.f;
  t.processed <- t.processed + 1;
  if t.det then begin
    Det.enter c.Ev.key_out;
    match dispatch t c with
    | () -> Det.leave ()
    | exception e ->
        Det.leave ();
        raise e
  end
  else dispatch t c

let run ?until t =
  let cpu0 = Sys.time () in
  let limit = match until with None -> Float.infinity | Some u -> u in
  let c = t.cursor in
  while Ev.pop t.events ~until:limit ~strict:false c do
    exec t c
  done;
  t.run_cpu <- t.run_cpu +. (Sys.time () -. cpu0);
  match until with
  | Some u when u > t.clock.Ev.f -> t.clock.Ev.f <- u
  | _ -> ()

let run_window t ~until ~inclusive =
  let cpu0 = Sys.time () in
  let c = t.cursor in
  while Ev.pop t.events ~until ~strict:(not inclusive) c do
    exec t c
  done;
  t.run_cpu <- t.run_cpu +. (Sys.time () -. cpu0);
  if until > t.clock.Ev.f then t.clock.Ev.f <- until

let next_key t = Ev.peek_key t.events

let run_next t =
  if Ev.pop t.events ~until:Float.infinity ~strict:false t.cursor then
    exec t t.cursor

let set_time t time = if time > t.clock.Ev.f then t.clock.Ev.f <- time

let events_processed t = t.processed
let pending t = Ev.length t.events
let cpu_time_in_run t = t.run_cpu

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id
