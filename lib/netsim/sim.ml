type t = {
  mutable clock : float;
  events : (unit -> unit) Prioq.t;
  rng : Random.State.t;
  mutable processed : int;
  mutable next_id : int;
  mutable run_cpu : float;
}

let create ?(seed = 1) () =
  { clock = 0.0; events = Prioq.create (); rng = Random.State.make [| seed; 0x51a7 |];
    processed = 0; next_id = 0; run_cpu = 0.0 }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time thunk =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %.9f is in the past (now %.9f)" time t.clock);
  Prioq.push t.events ~priority:(Float.max time t.clock) thunk

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) thunk

let run ?until t =
  let cpu0 = Sys.time () in
  (* Single heap traversal per event: pop_if_before replaces the former
     peek-then-pop pair. *)
  let limit = match until with None -> Float.infinity | Some u -> u in
  let continue = ref true in
  while !continue do
    match Prioq.pop_if_before t.events ~until:limit with
    | None -> continue := false
    | Some (time, thunk) ->
        t.clock <- time;
        t.processed <- t.processed + 1;
        thunk ()
  done;
  t.run_cpu <- t.run_cpu +. (Sys.time () -. cpu0);
  match until with Some u when u > t.clock -> t.clock <- u | _ -> ()

let events_processed t = t.processed
let pending t = Prioq.length t.events
let cpu_time_in_run t = t.run_cpu

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id
