(** Discrete-event simulation engine.

    The synchronous system model of §2.1.2/§4.1 is realized by a global
    event clock: bounded message delays and coarsely synchronized clocks
    hold by construction.  Deterministic for a fixed seed: events at equal
    times fire in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh simulation at time 0. *)

val now : t -> float
(** Current simulation time in seconds. *)

val rng : t -> Random.State.t
(** The simulation's random state (single source of randomness). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] seconds from now ([delay >= 0]). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a thunk at an absolute time (must not be in the past). *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty or the clock passes [until].
    Events scheduled at exactly [until] are processed. *)

val events_processed : t -> int
(** Total number of events executed so far. *)

val pending : t -> int
(** Number of events currently scheduled. *)

val cpu_time_in_run : t -> float
(** Processor seconds spent inside {!run} so far — with
    {!events_processed} this gives the engine's events/sec
    self-measurement that the telemetry summary reports. *)

val fresh_id : t -> int
(** Monotonically increasing identifier source (packet uids, flow ids);
    deterministic per simulation instance. *)
