(** Discrete-event simulation engine.

    The synchronous system model of §2.1.2/§4.1 is realized by a global
    event clock: bounded message delays and coarsely synchronized clocks
    hold by construction.  Deterministic for a fixed seed: events at equal
    times fire in scheduling order.

    {2 Deterministic-rank mode}

    A simulation created with [~det:true] keys every event by a
    deterministic {e rank} instead of an insertion sequence number.  The
    rank is a splitmix64-style hash of the causal position — the i-th
    event scheduled while executing a parent event gets
    [mix parent_rank i]; the i-th event scheduled outside any event
    (setup code) gets [mix 0 i].  Because the causal tree of events does
    not depend on how routers are partitioned across shards, ranks give
    the sharded engine ({!Shard}) a total order over same-time events
    that is byte-identical for any shard count.  The rank context lives
    in domain-local storage, so each shard domain tracks its own
    executing event without synchronization.  The classic engine
    ([~det:false], the default) is unchanged: insertion order breaks
    ties. *)

type t

val create : ?seed:int -> ?det:bool -> unit -> t
(** Fresh simulation at time 0.  [det] (default [false]) switches on
    deterministic-rank event keys; see the module preamble. *)

val now : t -> float
(** Current simulation time in seconds. *)

val rng : t -> Random.State.t
(** The simulation's random state (single source of randomness for the
    classic engine; the sharded engine gives data-plane entities their
    own derived streams instead). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] seconds from now ([delay >= 0]). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run a thunk at an absolute time (must not be in the past). *)

val schedule_ranked : t -> time:float -> rank:int -> (unit -> unit) -> unit
(** Schedule with an explicit, caller-computed rank — how a cross-shard
    handoff lands an event in the destination shard's heap with the rank
    drawn on the source shard (so the key is K-invariant). *)

val fresh_rank : t -> int
(** Draw the next deterministic rank from the calling domain's context
    (the executing event's child counter, or the root counter outside
    events).  Only meaningful for [~det:true] simulations. *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty or the clock passes [until].
    Events scheduled at exactly [until] are processed. *)

val run_window : t -> until:float -> inclusive:bool -> unit
(** Process events with time [< until] ([<= until] when [inclusive]),
    then advance the clock to [until].  The sharded engine's
    conservative time windows: half-open so boundary events land in the
    next window on every shard alike; the final window of a run is
    inclusive so events at exactly the horizon still execute. *)

val next_key : t -> (float * int) option
(** Time and rank of the earliest pending event, without executing it;
    the coordinator uses this to merge per-shard observation streams
    with control-plane events in (time, rank) order. *)

val run_next : t -> unit
(** Execute exactly the earliest pending event (no-op when idle). *)

val set_time : t -> float -> unit
(** Advance the clock to the given time if it is ahead of the current
    clock (never moves it backwards); the coordinator pins every shard
    clock to the epoch boundary between windows. *)

val events_processed : t -> int
(** Total number of events executed so far. *)

val pending : t -> int
(** Number of events currently scheduled. *)

val cpu_time_in_run : t -> float
(** Processor seconds spent inside {!run}/{!run_window} so far — with
    {!events_processed} this gives the engine's events/sec
    self-measurement that the telemetry summary reports. *)

val fresh_id : t -> int
(** Monotonically increasing identifier source (packet uids, flow ids);
    deterministic per simulation instance. *)

val reset_det_context : unit -> unit
(** Reset the calling domain's deterministic-rank context (root event
    counter and per-event state).  The sharded engine calls this when an
    engine is created so that consecutive runs in one process draw
    identical root ranks. *)

val current_rank : unit -> int
(** Rank of the event the calling domain is currently executing (0
    outside events); keys buffered observations. *)

val next_obs_ix : unit -> int
(** Next observation index within the currently executing event — a
    within-event emission counter that orders observations produced by
    the same event. *)

(** {2 Tagged events (the zero-allocation scheduling path)}

    The engine's hot events — queue kicks, transmissions, arrivals,
    post-jitter enqueues — are scheduled as an int tag plus two uniform
    payload slots straight into the flat event heap ({!Prioq.Event}),
    instead of boxing a closure per event.  A tag names a handler
    registered once at module-initialization time; the handler owns the
    typing discipline for the payload slots of its tag.  The closure
    API above remains for cold-path and control-plane work (tag 0). *)

val new_tag : (t -> Obj.t -> Obj.t -> int -> unit) -> int
(** Register an event handler and return its tag.  Must be called at
    module-initialization time (the table is read-only once shard
    domains start).  The handler receives the executing simulation, the
    two payload slots and the int operand. *)

val nil : Obj.t
(** Empty payload slot. *)

val schedule_ev : t -> delay:float -> tag:int -> i:int -> Obj.t -> Obj.t -> unit
(** [schedule delay] for a tagged event; allocates nothing. *)

val schedule_ev_at : t -> time:float -> tag:int -> i:int -> Obj.t -> Obj.t -> unit
(** [schedule_at] for a tagged event. *)

val schedule_ev_ranked :
  t -> time:float -> rank:int -> tag:int -> i:int -> Obj.t -> Obj.t -> unit
(** [schedule_ranked] for a tagged event (cross-shard handoffs). *)
