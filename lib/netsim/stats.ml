(* Always-on time-series collection for a simulated run.

   One [Stats.t] rides along with the probe and is fed from the same
   event sites; everything it keeps is bounded: downsampling
   [Telemetry.Timeseries] rings for the headline rates, mergeable
   [Telemetry.Hist] histograms for latencies and durations, and flat
   per-router / per-link arrays for the topology-shaped counters.

   Sharded runs split the collector in two tiers:

   - {e per-shard locals} ([local]) receive the data-plane events of
     their shard's windows on the shard's own domain and are folded into
     the main collector at every epoch barrier ([drain]).  All merged
     state is integer (bucket counts and fixed-point sums), so the fold
     is exact — commutative and associative — and the aggregate is
     byte-identical for every shard count K >= 1.

   - {e shared single-writer state} (queue-depth tracking and the
     per-link counters) is physically one set of arrays referenced by
     the main collector and every local: cell [r] is only ever touched
     by the domain executing router [r]'s events (its owning shard
     inside a window, the coordinator at a barrier), so sharing is
     race-free and the running queue depth never splits across
     collectors.

   Control-plane observations (verdicts, round durations, ctrl channel
   retries, faults) happen at epoch barriers on the coordinator and feed
   the main collector directly. *)

module Ts = Telemetry.Timeseries
module Hist = Telemetry.Hist

(* Headline series: 512 buckets of 50 ms cover 25.6 s before the first
   coarsening; the default 60 s scenario lands at 100 ms buckets. *)
let series_capacity = 512
let series_resolution = 0.05

(* Per-router queue series are coarser: 128 x 100 ms. *)
let router_capacity = 128
let router_resolution = 0.1

type shared = {
  n : int;
  depth : int array; (* running queued-packet count per router *)
  queue_depth : Ts.t array; (* event-weighted depth samples per router *)
  link_tx : int array; (* (router * n + next) transmit starts *)
  link_drop : int array; (* (router * n + next) iface drops *)
}

type t = {
  shared : shared;
  (* Mergeable data-plane collectors (per-shard local in sharded runs). *)
  injected : Ts.t;
  delivered : Ts.t;
  enqueued : Ts.t;
  dropped : Ts.t;
  malice : Ts.t;
  latency : Hist.t; (* origination-to-delivery, matches probe geometry *)
  (* Control plane: main collector only (locals leave these empty). *)
  verdicts : Ts.t;
  alarms : Ts.t;
  faults : Ts.t;
  round_duration : (string, Hist.t) Hashtbl.t; (* per protocol *)
  detection_latency : (string, Hist.t) Hashtbl.t; (* per detector, alarms *)
  ctrl_attempts : Hist.t; (* transmissions per ctrl send *)
  mutable ctrl_sends : int;
  mutable ctrl_timeouts : int;
  mutable attack_start : float; (* negative: unknown *)
}

let headline () = Ts.create ~capacity:series_capacity ~resolution:series_resolution ()
let latency_hist () = Hist.create ~buckets:24 ~min_exp:(-14) ()
let round_hist () = Hist.create ~buckets:20 ~min_exp:(-10) ()
let detect_hist () = Hist.create ~buckets:20 ~min_exp:(-4) ()

let of_shared shared =
  { shared;
    injected = headline ();
    delivered = headline ();
    enqueued = headline ();
    dropped = headline ();
    malice = headline ();
    latency = latency_hist ();
    verdicts = headline ();
    alarms = headline ();
    faults = headline ();
    round_duration = Hashtbl.create 8;
    detection_latency = Hashtbl.create 8;
    ctrl_attempts = Hist.create ~buckets:8 ~min_exp:0 ();
    ctrl_sends = 0;
    ctrl_timeouts = 0;
    attack_start = -1.0 }

let create ~n () =
  of_shared
    { n;
      depth = Array.make n 0;
      queue_depth =
        Array.init n (fun _ ->
            Ts.create ~capacity:router_capacity ~resolution:router_resolution ());
      link_tx = Array.make (n * n) 0;
      link_drop = Array.make (n * n) 0 }

let local t = of_shared t.shared

let routers t = t.shared.n
let set_attack_start t time = t.attack_start <- time
let attack_start t = if t.attack_start < 0.0 then None else Some t.attack_start

(* --- data plane ----------------------------------------------------- *)

let on_originate t ~time (_pkt : Packet.t) = Ts.record t.injected ~time 1.0

let depth_sample sh ~time router =
  Ts.record sh.queue_depth.(router) ~time (float_of_int sh.depth.(router))

let on_iface t ~time ~router ~next (ev : Iface.event) =
  let sh = t.shared in
  let link = (router * sh.n) + next in
  match ev with
  | Iface.Enqueued _ ->
      Ts.record t.enqueued ~time 1.0;
      sh.depth.(router) <- sh.depth.(router) + 1;
      depth_sample sh ~time router
  | Iface.Transmit_start _ ->
      sh.link_tx.(link) <- sh.link_tx.(link) + 1;
      if sh.depth.(router) > 0 then sh.depth.(router) <- sh.depth.(router) - 1;
      depth_sample sh ~time router
  | Iface.Drop_link_down _ ->
      Ts.record t.dropped ~time 1.0;
      sh.link_drop.(link) <- sh.link_drop.(link) + 1;
      (* The packet had left the queue (or the queue is being flushed);
         keep the running depth honest either way. *)
      if sh.depth.(router) > 0 then sh.depth.(router) <- sh.depth.(router) - 1;
      depth_sample sh ~time router
  | Iface.Drop_congestion _ | Iface.Drop_red_early _ | Iface.Drop_corrupted _ ->
      Ts.record t.dropped ~time 1.0;
      sh.link_drop.(link) <- sh.link_drop.(link) + 1
  | Iface.Delivered _ -> ()

let on_router t ~time ~router:_ (ev : Router.event) =
  match ev with
  | Router.Delivered_local pkt ->
      Ts.record t.delivered ~time 1.0;
      Hist.record t.latency (time -. pkt.Packet.created)
  | Router.Malicious_drop _ ->
      Ts.record t.dropped ~time 1.0;
      Ts.record t.malice ~time 1.0
  | Router.Malicious_modify _ | Router.Malicious_delay _ | Router.Fabricated _ ->
      Ts.record t.malice ~time 1.0
  | Router.No_route _ | Router.Ttl_expired _ -> Ts.record t.dropped ~time 1.0
  | Router.Fragmented _ -> ()

(* --- control plane --------------------------------------------------- *)

let find_hist tbl fresh key =
  match Hashtbl.find_opt tbl key with
  | Some h -> h
  | None ->
      let h = fresh () in
      Hashtbl.add tbl key h;
      h

let on_verdict t ~time ~detector ~alarm =
  Ts.record t.verdicts ~time 1.0;
  if alarm then begin
    Ts.record t.alarms ~time 1.0;
    if t.attack_start >= 0.0 && time >= t.attack_start then
      Hist.record
        (find_hist t.detection_latency detect_hist detector)
        (time -. t.attack_start)
  end

(* Round spans arrive keyed by their trace track ("fatih", "chi r3");
   the protocol is the first token, so per-router chi tracks fold into
   one per-protocol histogram. *)
let protocol_of_track track =
  match String.index_opt track ' ' with
  | None -> track
  | Some i -> String.sub track 0 i

let on_round t ~track ~start ~finish =
  Hist.record
    (find_hist t.round_duration round_hist (protocol_of_track track))
    (finish -. start)

let on_ctrl_send t ~attempts ~ok =
  t.ctrl_sends <- t.ctrl_sends + 1;
  if not ok then t.ctrl_timeouts <- t.ctrl_timeouts + 1;
  Hist.record t.ctrl_attempts (float_of_int attempts)

let on_fault t ~time = Ts.record t.faults ~time 1.0

(* --- epoch-barrier aggregation --------------------------------------- *)

let merge_tbl ~into fresh src =
  Hashtbl.iter
    (fun key h -> Hist.merge_into ~into:(find_hist into fresh key) h)
    src

let merge_into ~into src =
  Ts.merge_into ~into:into.injected src.injected;
  Ts.merge_into ~into:into.delivered src.delivered;
  Ts.merge_into ~into:into.enqueued src.enqueued;
  Ts.merge_into ~into:into.dropped src.dropped;
  Ts.merge_into ~into:into.malice src.malice;
  Hist.merge_into ~into:into.latency src.latency;
  Ts.merge_into ~into:into.verdicts src.verdicts;
  Ts.merge_into ~into:into.alarms src.alarms;
  Ts.merge_into ~into:into.faults src.faults;
  merge_tbl ~into:into.round_duration round_hist src.round_duration;
  merge_tbl ~into:into.detection_latency detect_hist src.detection_latency;
  Hist.merge_into ~into:into.ctrl_attempts src.ctrl_attempts;
  into.ctrl_sends <- into.ctrl_sends + src.ctrl_sends;
  into.ctrl_timeouts <- into.ctrl_timeouts + src.ctrl_timeouts

let drain ~into src =
  merge_into ~into src;
  Ts.clear src.injected;
  Ts.clear src.delivered;
  Ts.clear src.enqueued;
  Ts.clear src.dropped;
  Ts.clear src.malice;
  Hist.clear src.latency;
  Ts.clear src.verdicts;
  Ts.clear src.alarms;
  Ts.clear src.faults;
  Hashtbl.reset src.round_duration;
  Hashtbl.reset src.detection_latency;
  Hist.clear src.ctrl_attempts;
  src.ctrl_sends <- 0;
  src.ctrl_timeouts <- 0

(* --- JSON view ------------------------------------------------------- *)

let series_json name ts =
  let open Telemetry.Export in
  let nb = Ts.used ts in
  Assoc
    [ ("name", String name);
      ("resolution", Float (Ts.resolution ts));
      ("counts", List (List.init nb (fun i -> Int (Ts.bucket_count ts i))));
      ("sums", List (List.init nb (fun i -> Float (Ts.bucket_sum ts i)))) ]

let hist_json name h =
  let open Telemetry.Export in
  Assoc
    [ ("name", String name);
      ("uppers",
       List (Array.to_list (Array.map (fun u -> Float u) (Hist.uppers h))));
      ("counts",
       List (List.init (Hist.buckets h) (fun i -> Int (Hist.bucket_count h i))));
      ("count", Int (Hist.count h));
      ("sum", Float (Hist.sum h));
      ("p50", Float (Hist.p50 h));
      ("p95", Float (Hist.p95 h));
      ("p99", Float (Hist.p99 h)) ]

let sorted_hists tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let open Telemetry.Export in
  let sh = t.shared in
  let series =
    [ ("injected", t.injected); ("delivered", t.delivered);
      ("enqueued", t.enqueued); ("dropped", t.dropped); ("malice", t.malice);
      ("verdicts", t.verdicts); ("alarms", t.alarms); ("faults", t.faults) ]
  in
  let hists =
    (("delivery_latency", t.latency) :: ("ctrl_attempts", t.ctrl_attempts)
     :: List.map
          (fun (k, h) -> ("round_duration:" ^ k, h))
          (sorted_hists t.round_duration))
    @ List.map
        (fun (k, h) -> ("detection_latency:" ^ k, h))
        (sorted_hists t.detection_latency)
  in
  let links =
    let acc = ref [] in
    for r = sh.n - 1 downto 0 do
      for nx = sh.n - 1 downto 0 do
        let i = (r * sh.n) + nx in
        if sh.link_tx.(i) > 0 || sh.link_drop.(i) > 0 then
          acc :=
            Assoc
              [ ("src", Int r); ("dst", Int nx);
                ("tx", Int sh.link_tx.(i)); ("drops", Int sh.link_drop.(i)) ]
            :: !acc
      done
    done;
    !acc
  in
  let routers =
    List.init sh.n (fun r ->
        Assoc
          [ ("router", Int r);
            ("queue_depth", series_json "queue_depth" sh.queue_depth.(r)) ])
  in
  Assoc
    [ ("series", List (List.map (fun (n, ts) -> series_json n ts) series));
      ("hists", List (List.map (fun (n, h) -> hist_json n h) hists));
      ("ctrl",
       Assoc
         [ ("sends", Int t.ctrl_sends); ("timeouts", Int t.ctrl_timeouts) ]);
      ("links", List links);
      ("routers", List routers) ]

(* Prometheus text rendering of the same collectors: histogram [le=]
   edges come from [Hist.uppers] via the shared exporter, per-protocol
   histograms become labelled series. *)
let prometheus t =
  let open Telemetry.Export in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (n, ts) -> prometheus_append_timeseries buf ~name:("stats_" ^ n) ts)
    [ ("injected", t.injected); ("delivered", t.delivered);
      ("enqueued", t.enqueued); ("dropped", t.dropped); ("malice", t.malice);
      ("verdicts", t.verdicts); ("alarms", t.alarms); ("faults", t.faults) ];
  prometheus_append_hist buf ~name:"stats_delivery_latency_seconds"
    ~help:"origination-to-delivery latency" t.latency;
  prometheus_append_hist buf ~name:"stats_ctrl_attempts"
    ~help:"transmissions per control-plane send" t.ctrl_attempts;
  List.iter
    (fun (k, h) ->
      prometheus_append_hist buf ~name:"stats_round_duration_seconds"
        ~labels:[ ("protocol", k) ] h)
    (sorted_hists t.round_duration);
  List.iter
    (fun (k, h) ->
      prometheus_append_hist buf ~name:"stats_detection_latency_seconds"
        ~labels:[ ("detector", k) ] h)
    (sorted_hists t.detection_latency);
  Buffer.add_string buf "# TYPE stats_ctrl_sends counter\n";
  Buffer.add_string buf (Printf.sprintf "stats_ctrl_sends %d\n" t.ctrl_sends);
  Buffer.add_string buf "# TYPE stats_ctrl_timeouts counter\n";
  Buffer.add_string buf (Printf.sprintf "stats_ctrl_timeouts %d\n" t.ctrl_timeouts);
  Array.iteri
    (fun r ts ->
      prometheus_append_timeseries buf ~name:"stats_queue_depth"
        ~labels:[ ("router", string_of_int r) ] ts)
    t.shared.queue_depth;
  Buffer.contents buf

let json_of_series = series_json
let json_of_hist = hist_json

(* Accessors for the live view and the exporters. *)
let injected t = t.injected
let delivered t = t.delivered
let enqueued t = t.enqueued
let dropped t = t.dropped
let malice t = t.malice
let alarms t = t.alarms
let delivery_latency t = t.latency
let ctrl_attempts_hist t = t.ctrl_attempts
let ctrl_sends t = t.ctrl_sends
let ctrl_timeouts t = t.ctrl_timeouts
let queue_depth t r = t.shared.queue_depth.(r)
let link_tx t ~src ~dst = t.shared.link_tx.((src * t.shared.n) + dst)
let link_drops t ~src ~dst = t.shared.link_drop.((src * t.shared.n) + dst)

let round_durations t = sorted_hists t.round_duration
let detection_latencies t = sorted_hists t.detection_latency
