(** Always-on time-series collection for a simulated run.

    A [Stats.t] rides along with the {!Probe}: headline event rates as
    downsampling {!Telemetry.Timeseries} rings, latency and duration
    {!Telemetry.Hist} histograms, per-router queue-depth series and
    per-link transmit/drop counters — all bounded, all fed with O(1)
    allocation-free records from the same sites that feed the probe.

    Sharded runs keep one {!local} collector per shard, fed on the
    shard's own domain inside windows, and {!drain} them into the main
    collector at every epoch barrier.  Merged state is integer bucket
    counts plus fixed-point sums, so the fold is exact (commutative and
    associative) and the aggregate is byte-identical for every shard
    count [K >= 1].  Queue-depth tracking and the per-link counters are
    shared single-writer arrays (router [r]'s cells are only touched by
    the domain executing [r]'s events), so the running depth never
    splits across collectors. *)

type t

val create : n:int -> unit -> t
(** The main collector for an [n]-router network. *)

val local : t -> t
(** A per-shard local collector: fresh mergeable series/histograms,
    {e sharing} the per-router and per-link arrays of the parent. *)

val routers : t -> int

val set_attack_start : t -> float -> unit
(** Arms the detection-latency histograms: subsequent alarming verdicts
    record [time - attack_start]. *)

val attack_start : t -> float option

(** {2 Data plane} (safe on shard domains via {!local} collectors) *)

val on_originate : t -> time:float -> Packet.t -> unit
val on_iface : t -> time:float -> router:int -> next:int -> Iface.event -> unit
val on_router : t -> time:float -> router:int -> Router.event -> unit

(** {2 Control plane} (coordinator only — feed the main collector) *)

val on_verdict : t -> time:float -> detector:string -> alarm:bool -> unit

val on_round : t -> track:string -> start:float -> finish:float -> unit
(** Record a protocol round duration.  [track] is the span track name
    ("fatih", "chi r3"); its first token keys the per-protocol
    histogram. *)

val on_ctrl_send : t -> attempts:int -> ok:bool -> unit
val on_fault : t -> time:float -> unit

(** {2 Aggregation} *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s mergeable collectors into [into] (exact integer
    arithmetic; shared arrays are left alone). *)

val drain : into:t -> t -> unit
(** {!merge_into} followed by clearing [src]'s mergeable collectors —
    the per-epoch-barrier step for per-shard locals.  Shared state
    (queue depths, link counters) is untouched: it lives in one place
    and needs no folding. *)

(** {2 Views} *)

val to_json : t -> Telemetry.Export.json
(** The "stats" section of the metrics document: headline series,
    histograms (with deterministic p50/p95/p99), ctrl channel counters,
    per-link totals and per-router queue-depth series.  Deterministically
    ordered. *)

val json_of_series : string -> Telemetry.Timeseries.t -> Telemetry.Export.json
val json_of_hist : string -> Telemetry.Hist.t -> Telemetry.Export.json

val prometheus : t -> string
(** Prometheus text rendering of every collector ([stats_] prefix):
    series as per-bucket gauge vectors, histograms with [le=] edges
    exactly {!Telemetry.Hist.uppers}, per-protocol histograms as
    labelled families. *)

val injected : t -> Telemetry.Timeseries.t
val delivered : t -> Telemetry.Timeseries.t
val enqueued : t -> Telemetry.Timeseries.t
val dropped : t -> Telemetry.Timeseries.t
val malice : t -> Telemetry.Timeseries.t
val alarms : t -> Telemetry.Timeseries.t
val delivery_latency : t -> Telemetry.Hist.t
val ctrl_attempts_hist : t -> Telemetry.Hist.t
val ctrl_sends : t -> int
val ctrl_timeouts : t -> int
val queue_depth : t -> int -> Telemetry.Timeseries.t
val link_tx : t -> src:int -> dst:int -> int
val link_drops : t -> src:int -> dst:int -> int
val round_durations : t -> (string * Telemetry.Hist.t) list
val detection_latencies : t -> (string * Telemetry.Hist.t) list
