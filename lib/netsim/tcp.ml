let header_bytes = 40
let ack_size = header_bytes
let initial_rto = 3.0
let min_rto = 0.2
let max_rto = 60.0

type t = {
  net : Net.t;
  sim : Sim.t;
  src : int;
  dst : int;
  flow : int;
  mss : int;
  total : int option;           (* payload bytes to send; None = unbounded *)
  start : float;
  stop : float option;
  (* sender state *)
  mutable established : bool;
  mutable connect_time : float option;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  mutable rtt_probe : (int * float) option;  (* (seq, sent_at) being timed *)
  mutable timer_gen : int;                   (* cancels stale RTO events *)
  mutable timer_armed : bool;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable syn_retries : int;
  mutable finish_time : float option;
  (* receiver state *)
  mutable rcv_nxt : int;
  ooo : (int, int) Hashtbl.t;                (* seq -> payload length *)
}

let flow_id t = t.flow
let established t = t.established
let connect_time t = t.connect_time
let bytes_acked t = t.snd_una
let cwnd t = t.cwnd
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let syn_retries t = t.syn_retries

let finished t = match t.total with Some n -> t.snd_una >= n | None -> false
let finish_time t = t.finish_time

let goodput t ~at =
  let dt = at -. t.start in
  if dt <= 0.0 then 0.0 else float_of_int t.snd_una /. dt

let flight t = t.snd_nxt - t.snd_una

let mssf t = float_of_int t.mss

let send_segment t ~seq ~len =
  let pkt =
    Net.make_ctrl_packet t.net ~src:t.src ~dst:t.dst ~flow:t.flow
      ~size:(len + header_bytes)
      (Packet.Tcp { seq; ack = -1; syn = false; fin = false })
  in
  Net.originate t.net pkt

let send_syn t =
  let pkt =
    Net.make_ctrl_packet t.net ~src:t.src ~dst:t.dst ~flow:t.flow ~size:header_bytes
      (Packet.Tcp { seq = -1; ack = -1; syn = true; fin = false })
  in
  Net.originate t.net pkt

let send_synack t =
  let pkt =
    Net.make_ctrl_packet t.net ~src:t.dst ~dst:t.src ~flow:t.flow ~size:header_bytes
      (Packet.Tcp { seq = -1; ack = 0; syn = true; fin = false })
  in
  Net.originate t.net pkt

let send_ack t =
  let pkt =
    Net.make_ctrl_packet t.net ~src:t.dst ~dst:t.src ~flow:t.flow ~size:ack_size
      (Packet.Tcp { seq = -1; ack = t.rcv_nxt; syn = false; fin = false })
  in
  Net.originate t.net pkt

(* --- retransmission timer --- *)

let rec arm_timer t =
  t.timer_gen <- t.timer_gen + 1;
  t.timer_armed <- true;
  let gen = t.timer_gen in
  Sim.schedule t.sim ~delay:t.rto (fun () ->
      if t.timer_armed && gen = t.timer_gen && flight t > 0 then on_timeout t)

and disarm_timer t = t.timer_armed <- false

and on_timeout t =
  t.timeouts <- t.timeouts + 1;
  t.ssthresh <- Float.max (float_of_int (flight t) /. 2.0) (2.0 *. mssf t);
  t.cwnd <- mssf t;
  t.dupacks <- 0;
  t.in_recovery <- false;
  t.rtt_probe <- None;
  t.rto <- Float.min max_rto (t.rto *. 2.0);
  (* Go-back-N from the last cumulative ACK. *)
  t.snd_nxt <- t.snd_una;
  t.retransmits <- t.retransmits + 1;
  transmit_window t;
  arm_timer t

(* Offer new segments while the congestion window allows. *)
and transmit_window t =
  let past_stop = match t.stop with Some s -> Sim.now t.sim > s | None -> false in
  let continue = ref true in
  while !continue do
    let available =
      match t.total with Some n -> n - t.snd_nxt | None -> t.mss
    in
    let room = int_of_float t.cwnd - flight t in
    if past_stop || available <= 0 || room < min t.mss available then continue := false
    else begin
      let len = min t.mss available in
      send_segment t ~seq:t.snd_nxt ~len;
      (* Time one un-retransmitted segment per RTT (Karn's rule). *)
      if t.rtt_probe = None then t.rtt_probe <- Some (t.snd_nxt, Sim.now t.sim);
      t.snd_nxt <- t.snd_nxt + len;
      if not t.timer_armed then arm_timer t
    end
  done

let update_rtt t sample =
  (match t.srtt with
  | None ->
      t.srtt <- Some sample;
      t.rttvar <- sample /. 2.0
  | Some srtt ->
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (srtt -. sample));
      t.srtt <- Some ((0.875 *. srtt) +. (0.125 *. sample)));
  let srtt = Option.get t.srtt in
  t.rto <- Float.max min_rto (Float.min max_rto (srtt +. Float.max 0.01 (4.0 *. t.rttvar)))

let fast_retransmit t =
  t.ssthresh <- Float.max (float_of_int (flight t) /. 2.0) (2.0 *. mssf t);
  t.in_recovery <- true;
  t.recover <- t.snd_nxt;
  t.retransmits <- t.retransmits + 1;
  let len =
    match t.total with
    | Some n -> min t.mss (n - t.snd_una)
    | None -> t.mss
  in
  send_segment t ~seq:t.snd_una ~len;
  t.cwnd <- t.ssthresh +. (3.0 *. mssf t);
  arm_timer t

let on_ack t ack =
  if ack > t.snd_una then begin
    (* New data acknowledged. *)
    (match t.rtt_probe with
    | Some (seq, sent_at) when ack > seq ->
        update_rtt t (Sim.now t.sim -. sent_at);
        t.rtt_probe <- None
    | _ -> ());
    t.snd_una <- ack;
    t.dupacks <- 0;
    if t.finish_time = None && (match t.total with Some n -> ack >= n | None -> false) then
      t.finish_time <- Some (Sim.now t.sim);
    if t.in_recovery then begin
      if ack >= t.recover then begin
        t.in_recovery <- false;
        t.cwnd <- t.ssthresh
      end
      else begin
        (* Partial ACK: retransmit the next hole immediately (NewReno-ish
           simplification keeps recovery from stalling). *)
        t.retransmits <- t.retransmits + 1;
        let len =
          match t.total with Some n -> min t.mss (n - t.snd_una) | None -> t.mss
        in
        send_segment t ~seq:t.snd_una ~len
      end
    end
    else if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. mssf t
    else t.cwnd <- t.cwnd +. (mssf t *. mssf t /. t.cwnd);
    if flight t = 0 then disarm_timer t else arm_timer t;
    transmit_window t
  end
  else if ack = t.snd_una && flight t > 0 then begin
    t.dupacks <- t.dupacks + 1;
    if t.dupacks = 3 && not t.in_recovery then fast_retransmit t
    else if t.in_recovery then begin
      (* Window inflation while dup ACKs keep arriving. *)
      t.cwnd <- t.cwnd +. mssf t;
      transmit_window t
    end
  end

let on_receiver_data t hdr (pkt : Packet.t) =
  let len = pkt.Packet.size - header_bytes in
  let seq = hdr.Packet.seq in
  if len > 0 then begin
    if seq = t.rcv_nxt then begin
      t.rcv_nxt <- t.rcv_nxt + len;
      (* Drain any buffered contiguous segments. *)
      let continue = ref true in
      while !continue do
        match Hashtbl.find_opt t.ooo t.rcv_nxt with
        | Some l ->
            Hashtbl.remove t.ooo t.rcv_nxt;
            t.rcv_nxt <- t.rcv_nxt + l
        | None -> continue := false
      done
    end
    else if seq > t.rcv_nxt then Hashtbl.replace t.ooo seq len
  end;
  send_ack t

let rec syn_timer t attempt =
  let delay = Float.min max_rto (initial_rto *. float_of_int (1 lsl attempt)) in
  Sim.schedule t.sim ~delay (fun () ->
      if not t.established then begin
        t.syn_retries <- t.syn_retries + 1;
        send_syn t;
        syn_timer t (attempt + 1)
      end)

let connect net ~src ~dst ?(mss = 960) ?total_bytes ?(start = 0.0) ?stop () =
  if mss <= 0 then invalid_arg "Tcp.connect: mss must be positive";
  let sim = Net.sim net in
  let t =
    { net; sim; src; dst; flow = Sim.fresh_id sim; mss; total = total_bytes; start; stop;
      established = false; connect_time = None; snd_una = 0; snd_nxt = 0;
      cwnd = float_of_int mss; ssthresh = 65535.0; dupacks = 0; in_recovery = false;
      recover = 0; srtt = None; rttvar = 0.0; rto = initial_rto; rtt_probe = None;
      timer_gen = 0; timer_armed = false; retransmits = 0; timeouts = 0; syn_retries = 0;
      finish_time = None; rcv_nxt = 0; ooo = Hashtbl.create 16 }
  in
  (* Receiver side app. *)
  Net.attach_app net ~node:dst (fun pkt ->
      if pkt.Packet.flow = t.flow then begin
        match pkt.Packet.proto with
        | Packet.Tcp hdr when hdr.Packet.syn -> send_synack t
        | Packet.Tcp hdr when hdr.Packet.seq >= 0 -> on_receiver_data t hdr pkt
        | Packet.Tcp _ | Packet.Udp | Packet.Ping _ | Packet.Pong _ -> ()
      end);
  (* Sender side app. *)
  Net.attach_app net ~node:src (fun pkt ->
      if pkt.Packet.flow = t.flow then begin
        match pkt.Packet.proto with
        | Packet.Tcp hdr when hdr.Packet.syn && hdr.Packet.ack = 0 ->
            if not t.established then begin
              t.established <- true;
              t.connect_time <- Some (Sim.now t.sim);
              transmit_window t
            end
        | Packet.Tcp hdr when hdr.Packet.ack >= 0 && t.established -> on_ack t hdr.Packet.ack
        | Packet.Tcp _ | Packet.Udp | Packet.Ping _ | Packet.Pong _ -> ()
      end);
  Sim.schedule_at sim ~time:start (fun () ->
      send_syn t;
      syn_timer t 0);
  t
