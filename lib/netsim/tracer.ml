(* The tracer is a filtered view over the same typed event pipeline the
   telemetry probe uses: it journals Probe.event records and derives the
   legacy line format only when asked. *)

type t = {
  journal : Probe.event Telemetry.Journal.t;
  routers : int list;
  flows : int list;
}

let wants t ~router pkt =
  (t.routers = [] || List.mem router t.routers)
  && (t.flows = [] || List.mem pkt.Packet.flow t.flows)

let attach ~net ?(capacity = 1000) ?(routers = []) ?(flows = []) () =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity must be positive";
  let t = { journal = Telemetry.Journal.create ~capacity (); routers; flows } in
  Net.subscribe_iface net (fun ev ->
      let pkt = Probe.iface_packet ev.Net.kind in
      if wants t ~router:ev.Net.router pkt then
        Telemetry.Journal.record t.journal
          (Probe.Link
             { Probe.time = ev.Net.time; router = ev.Net.router; next = ev.Net.next;
               ev = ev.Net.kind }));
  Net.subscribe_router net (fun ev ->
      let pkt = Probe.router_packet ev.Net.kind in
      if wants t ~router:ev.Net.router pkt then
        Telemetry.Journal.record t.journal
          (Probe.Node
             { Probe.time = ev.Net.time; router = ev.Net.router; ev = ev.Net.kind }));
  t

let typed_events t = Telemetry.Journal.to_list t.journal

let events t = List.map Probe.describe (typed_events t)

let count t = Telemetry.Journal.total t.journal

let dump t oc =
  Telemetry.Journal.iter t.journal (fun ev ->
      Printf.fprintf oc "%s\n" (Probe.describe ev))
