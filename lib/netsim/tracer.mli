(** A bounded human-readable event trace (tcpdump for the simulator).

    Captures link and router events into a bounded {!Telemetry.Journal}
    of typed {!Probe.event} records with optional filters; the
    human-readable lines are derived on demand.  Dump it when debugging
    a scenario or teaching a protocol run. *)

type t

val typed_events : t -> Probe.event list
(** The retained records, oldest first, as typed {!Probe.event} values —
    the tracer stores these and derives the strings of {!events} on
    demand. *)

val attach :
  net:Net.t ->
  ?capacity:int ->
  ?routers:int list ->
  ?flows:int list ->
  unit ->
  t
(** Start recording (default capacity 1000 events; empty filter lists
    mean "everything").  Raises [Invalid_argument] on non-positive
    capacity. *)

val events : t -> string list
(** The retained event lines, oldest first, each like
    "12.0345 r3->r4 deliver #812 0->4 flow=2 500B udp". *)

val count : t -> int
(** Events recorded since attach (including evicted ones). *)

val dump : t -> out_channel -> unit
(** Write the retained lines to a channel. *)
