(* Flat event heap for the simulator's inner loop: the PR-3 parallel
   array design extended with an event descriptor per element, so the
   engine schedules (tag, payload, payload, int) tuples without boxing a
   closure or a variant per event, and pops into a caller-owned cursor
   without building an option or a tuple.

   The heap proper is four parallel SCALAR arrays — unboxed float
   times, int tie-break keys, a packed int descriptor (low 8 bits event
   tag, rest a small non-negative operand) and an int payload handle.
   Payloads never move: they live in a stable side table ([slots], two
   [Obj.t] cells per handle) and the heap shuffles only the handle, so
   a sift step is plain loads and stores with no [caml_modify] write
   barrier — the barrier fires exactly twice per push (writing the
   payloads into the table) and twice per pop (scrubbing them), not
   once per sift level.  An earlier version kept the payloads inline as
   two more parallel arrays; moving them during sifts made the write
   barrier the hottest function in the simulator profile.

   Slot cells hold [Obj.t] on purpose: the simulator's tag handlers
   know the concrete types behind each tag, and a monomorphic table
   keeps every payload access boxing-free.  Cells vacated by a pop are
   scrubbed so finished events never pin packets or closures live (the
   Prioq stale-reference contract).  Free handles form a freelist
   threaded through their own first cell as an immediate int. *)

type t = {
  mutable prio : float array;
  mutable key : int array;
  mutable meta : int array;
  mutable hnd : int array;
  mutable slots : Obj.t array; (* 2 cells per handle *)
  mutable free : int; (* freelist head, -1 = empty *)
  mutable fresh : int; (* next never-used handle *)
  mutable size : int;
  mutable next_seq : int;
}

(* Popped-event cursor.  [time] is an all-float box so reading an
   event's time out of the heap stores an unboxed float (a mutable
   float field in this mixed record would allocate a fresh box per
   pop on the non-flambda compiler). *)
type fbox = { mutable f : float }

type cursor = {
  time : fbox;
  mutable key_out : int;
  mutable tag : int;
  mutable iarg : int;
  mutable pa : Obj.t;
  mutable pb : Obj.t;
}

let nil : Obj.t = Obj.repr 0

let cursor () =
  { time = { f = 0.0 }; key_out = 0; tag = 0; iarg = 0; pa = nil; pb = nil }

let create () =
  { prio = [||]; key = [||]; meta = [||]; hnd = [||]; slots = [||];
    free = -1; fresh = 0; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.prio

(* Every live element owns exactly one handle and every released handle
   is on the freelist, so when the freelist is empty [fresh = size] and
   the post-grow capacity bound [size < cap] keeps fresh handles inside
   [slots] (which has two cells per heap slot). *)
let acquire t =
  let h = t.free in
  if h >= 0 then begin
    t.free <- (Obj.obj (Array.unsafe_get t.slots (2 * h)) : int);
    h
  end
  else begin
    let h = t.fresh in
    t.fresh <- h + 1;
    h
  end

let release t h =
  Array.unsafe_set t.slots (2 * h) (Obj.repr t.free);
  Array.unsafe_set t.slots ((2 * h) + 1) nil;
  t.free <- h

let grow t =
  let cap = Array.length t.prio in
  if t.size = cap then begin
    let ncap = max 64 (2 * cap) in
    let prio = Array.make ncap 0.0 in
    let key = Array.make ncap 0 in
    let meta = Array.make ncap 0 in
    let hnd = Array.make ncap 0 in
    let slots = Array.make (2 * ncap) nil in
    Array.blit t.prio 0 prio 0 t.size;
    Array.blit t.key 0 key 0 t.size;
    Array.blit t.meta 0 meta 0 t.size;
    Array.blit t.hnd 0 hnd 0 t.size;
    Array.blit t.slots 0 slots 0 (2 * t.fresh);
    t.prio <- prio;
    t.key <- key;
    t.meta <- meta;
    t.hnd <- hnd;
    t.slots <- slots
  end

let push_key t k ~time ~tag ~iarg pa pb =
  grow t;
  let h = acquire t in
  Array.unsafe_set t.slots (2 * h) pa;
  Array.unsafe_set t.slots ((2 * h) + 1) pb;
  let prio = t.prio and key = t.key and meta = t.meta and hnd = t.hnd in
  let m = tag lor (iarg lsl 8) in
  (* Hole-based sift-up: shift parents down, write the new element once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pp = Array.unsafe_get prio p in
    if time < pp || (time = pp && k < Array.unsafe_get key p) then begin
      Array.unsafe_set prio !i pp;
      Array.unsafe_set key !i (Array.unsafe_get key p);
      Array.unsafe_set meta !i (Array.unsafe_get meta p);
      Array.unsafe_set hnd !i (Array.unsafe_get hnd p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set prio !i time;
  Array.unsafe_set key !i k;
  Array.unsafe_set meta !i m;
  Array.unsafe_set hnd !i h

let push t ~time ~tag ~iarg pa pb =
  let sq = t.next_seq in
  t.next_seq <- sq + 1;
  push_key t sq ~time ~tag ~iarg pa pb

let push_ranked t ~time ~rank ~tag ~iarg pa pb =
  push_key t rank ~time ~tag ~iarg pa pb

let peek_key t = if t.size = 0 then None else Some (t.prio.(0), t.key.(0))

(* Sift the element (p, k, m, h) down from the root of the first
   [t.size] slots, writing it into its final slot. *)
let sift_down t p k m h =
  let prio = t.prio and key = t.key and meta = t.meta and hnd = t.hnd in
  let size = t.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < size then begin
          let pl = Array.unsafe_get prio l and pr = Array.unsafe_get prio r in
          if pr < pl || (pr = pl && Array.unsafe_get key r < Array.unsafe_get key l)
          then r
          else l
        end
        else l
      in
      let pc = Array.unsafe_get prio c in
      if pc < p || (pc = p && Array.unsafe_get key c < k) then begin
        Array.unsafe_set prio !i pc;
        Array.unsafe_set key !i (Array.unsafe_get key c);
        Array.unsafe_set meta !i (Array.unsafe_get meta c);
        Array.unsafe_set hnd !i (Array.unsafe_get hnd c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set prio !i p;
  Array.unsafe_set key !i k;
  Array.unsafe_set meta !i m;
  Array.unsafe_set hnd !i h

let remove_root t =
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let p = t.prio.(n) and k = t.key.(n) and m = t.meta.(n) in
    let h = t.hnd.(n) in
    sift_down t p k m h
  end

let pop t ~until ~strict (c : cursor) =
  if t.size = 0 then false
  else begin
    let p = t.prio.(0) in
    if (if strict then p >= until else p > until) then false
    else begin
      c.time.f <- p;
      c.key_out <- t.key.(0);
      let m = t.meta.(0) in
      c.tag <- m land 0xff;
      c.iarg <- m lsr 8;
      let h = t.hnd.(0) in
      c.pa <- Array.unsafe_get t.slots (2 * h);
      c.pb <- Array.unsafe_get t.slots ((2 * h) + 1);
      release t h;
      remove_root t;
      true
    end
  end

let clear t =
  for i = 0 to t.size - 1 do
    release t t.hnd.(i)
  done;
  t.size <- 0
