(** Flat event heap: the {!Prioq} parallel-array min-heap specialized
    for the simulator's inner loop.

    Each element is a full event descriptor — time, tie-break key, an
    8-bit event tag, a small non-negative int operand and two uniform
    payload slots — so scheduling allocates nothing (beyond amortized
    growth) and popping fills a caller-owned {!cursor} instead of
    building options or tuples.  Internally the heap sifts four scalar
    parallel arrays (time, key, packed descriptor, payload handle);
    payloads sit still in a handle-indexed side table, so reordering
    the heap never runs the GC write barrier.

    Payload slots are [Obj.t]: the scheduler's tag handlers own the
    typing discipline (each tag fixes the concrete types of both slots),
    which is what lets one monomorphic heap carry every event kind
    without per-event boxing.  Use {!nil} for unused slots.  Slots
    vacated by pops and {!clear} are scrubbed, so finished events never
    keep their payloads reachable.

    Not thread-safe; each shard owns its own. *)

type t

type fbox = { mutable f : float }
(** Single-field float record: flat storage, so writing through it does
    not box. *)

type cursor = {
  time : fbox;          (** event time (unboxed store) *)
  mutable key_out : int;(** tie-break key: rank or sequence number *)
  mutable tag : int;    (** event tag, [0..255] *)
  mutable iarg : int;   (** small operand, [>= 0] *)
  mutable pa : Obj.t;   (** payload slot A *)
  mutable pb : Obj.t;   (** payload slot B *)
}
(** Destination of {!pop}.  The payload slots keep the popped event's
    payloads reachable until overwritten; the dispatch loop should drop
    them ([nil]) once consumed. *)

val nil : Obj.t
(** The empty payload (the immediate [0]). *)

val cursor : unit -> cursor

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Backing-array capacity; {!clear} keeps it. *)

val push : t -> time:float -> tag:int -> iarg:int -> Obj.t -> Obj.t -> unit
(** Insert an event; ties at equal time pop in insertion order.
    [tag] must fit 8 bits and [iarg] must be non-negative (they share a
    packed descriptor word). *)

val push_ranked :
  t -> time:float -> rank:int -> tag:int -> iarg:int -> Obj.t -> Obj.t -> unit
(** Insert with a caller-supplied tie-break rank instead of a sequence
    number (the sharded engine's deterministic event order). *)

val pop : t -> until:float -> strict:bool -> cursor -> bool
(** Pop the minimum element into the cursor when its time is within the
    window ([< until] when [strict], [<= until] otherwise); returns
    [false] (cursor untouched) when the heap is empty or the minimum is
    beyond the window.  Allocates nothing. *)

val peek_key : t -> (float * int) option
(** Time and tie-break key of the earliest event, without popping. *)

val clear : t -> unit
(** Empty the heap, keeping capacity; payload slots are scrubbed. *)
