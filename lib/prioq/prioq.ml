(* Flat binary min-heap: parallel arrays instead of one boxed
   {priority; seq; value} record per element.  [prio] is an unboxed
   float array, so a push allocates nothing (beyond amortized growth)
   and sift-up/down touch cache-friendly flat storage.  Ties break by
   the int in [seq]: an insertion sequence number for {!push} (FIFO
   order), or a caller-supplied rank for {!push_ranked} (the sharded
   engine's deterministic event order, which must not depend on
   insertion order). *)

type 'a t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { prio = [||]; seq = [||]; vals = [||]; size = 0; next_seq = 0 }
let length t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.prio

(* Overwrite vals.(i .. i+len-1) with an immediate so the slots no
   longer reference user values.  When ['a] is [float] the backing
   array is an unboxed float array (Double_array_tag): its slots hold
   no pointers, so there is nothing to scrub — and writing an immediate
   into it through [Obj] would corrupt it, hence the tag guard. *)
let scrub (vals : 'a array) i len =
  if len > 0 then begin
    let repr = Obj.repr vals in
    if Obj.tag repr <> Obj.double_array_tag then
      Array.fill (Obj.obj repr : Obj.t array) i len (Obj.repr 0)
  end

let grow t value =
  let cap = Array.length t.prio in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let prio = Array.make ncap 0.0 in
    let seq = Array.make ncap 0 in
    let vals = Array.make ncap value in
    Array.blit t.prio 0 prio 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    Array.blit t.seq 0 seq 0 t.size;
    (* Array.make filled every slot with [value]; drop the references
       beyond the live prefix (slot [size] is written by the caller's
       push immediately after). *)
    scrub vals t.size (ncap - t.size);
    t.prio <- prio;
    t.seq <- seq;
    t.vals <- vals
  end

let push_key t key ~priority value =
  grow t value;
  let prio = t.prio and seq = t.seq and vals = t.vals in
  (* Hole-based sift-up: shift parents down, write the new element once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pp = Array.unsafe_get prio p in
    if priority < pp || (priority = pp && key < Array.unsafe_get seq p) then begin
      Array.unsafe_set prio !i pp;
      Array.unsafe_set seq !i (Array.unsafe_get seq p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set prio !i priority;
  Array.unsafe_set seq !i key;
  Array.unsafe_set vals !i value

let push t ~priority value =
  let sq = t.next_seq in
  t.next_seq <- sq + 1;
  push_key t sq ~priority value

let push_ranked t ~priority ~rank value = push_key t rank ~priority value

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.vals.(0))
let peek_key t = if t.size = 0 then None else Some (t.prio.(0), t.seq.(0))

(* Sift the element (p, sq, v) down from the root of the first [t.size]
   slots, writing it into its final slot. *)
let sift_down t p sq v =
  let prio = t.prio and seq = t.seq and vals = t.vals in
  let size = t.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < size then begin
          let pl = Array.unsafe_get prio l and pr = Array.unsafe_get prio r in
          if pr < pl || (pr = pl && Array.unsafe_get seq r < Array.unsafe_get seq l)
          then r
          else l
        end
        else l
      in
      let pc = Array.unsafe_get prio c in
      if pc < p || (pc = p && Array.unsafe_get seq c < sq) then begin
        Array.unsafe_set prio !i pc;
        Array.unsafe_set seq !i (Array.unsafe_get seq c);
        Array.unsafe_set vals !i (Array.unsafe_get vals c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set prio !i p;
  Array.unsafe_set seq !i sq;
  Array.unsafe_set vals !i v

let pop_root t =
  (* pre: t.size > 0 *)
  let top_p = t.prio.(0) and top_v = t.vals.(0) in
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then begin
    let p = t.prio.(n) and sq = t.seq.(n) and v = t.vals.(n) in
    sift_down t p sq v
  end;
  (* The vacated slot (the old last slot, or the root itself when the
     heap just emptied) must stop referencing the popped value. *)
  scrub t.vals n 1;
  (top_p, top_v)

let pop t = if t.size = 0 then None else Some (pop_root t)

let pop_if_before t ~until =
  if t.size = 0 || t.prio.(0) > until then None else Some (pop_root t)

let pop_ranked t ~until ~strict =
  if t.size = 0 then None
  else
    let p = t.prio.(0) in
    if (if strict then p >= until else p > until) then None
    else begin
      let key = t.seq.(0) in
      let _, v = pop_root t in
      Some (p, key, v)
    end

let clear t =
  (* Keep capacity so a cleared heap can be refilled without re-growth;
     scrub the live prefix so no cleared element stays reachable (slots
     beyond [size] were already scrubbed by pop/grow). *)
  scrub t.vals 0 t.size;
  t.size <- 0

(* Re-export the flat event heap so library users reach it as
   [Prioq.Event] (this module is the library's curated interface). *)
module Event = Evheap
