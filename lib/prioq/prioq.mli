(** A mutable binary min-heap keyed by a float priority.

    Shared by the Dijkstra implementations (priority = path cost) and the
    discrete-event simulator (priority = event time).  Ties are broken by
    insertion order, which makes every consumer deterministic.

    Storage is flat parallel arrays (an unboxed float array for
    priorities, an int array for tie-break sequence numbers and a value
    array), so pushing an element performs no per-element allocation. *)

type 'a t

val create : unit -> 'a t
(** Empty heap. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity ([>= length]); exposed so tests can
    check that {!clear} does not shed it. *)

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; [None] when empty.
    Equal priorities come out in insertion order (FIFO). *)

val pop_if_before : 'a t -> until:float -> (float * 'a) option
(** [pop_if_before t ~until] pops the minimum element only when its
    priority is [<= until]; a single traversal replacing the
    peek-then-pop pattern on the event-loop hot path.  [~until:infinity]
    behaves like {!pop}. *)

val peek : 'a t -> (float * 'a) option
(** The minimum without removing it. *)

val clear : 'a t -> unit
(** Empty the heap, keeping the backing capacity for reuse (at most one
    previously stored value remains referenced until overwritten). *)
