(** A mutable binary min-heap keyed by a float priority.

    Shared by the Dijkstra implementations (priority = path cost) and the
    discrete-event simulator (priority = event time).  Ties are broken by
    an int key: an insertion sequence number for {!push} (FIFO order) or
    a caller-supplied rank for {!push_ranked} — the sharded engine keys
    events by a deterministic rank so that the pop order of same-time
    events does not depend on which shard (or insertion order) produced
    them.

    Storage is flat parallel arrays (an unboxed float array for
    priorities, an int array for tie-break keys and a value array), so
    pushing an element performs no per-element allocation.

    Heaps are not thread-safe; each shard owns its own. *)

type 'a t

val create : unit -> 'a t
(** Empty heap. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array capacity ([>= length]); exposed so tests can
    check that {!clear} does not shed it. *)

val push : 'a t -> priority:float -> 'a -> unit
(** Insert an element; ties with equal priority pop in insertion order. *)

val push_ranked : 'a t -> priority:float -> rank:int -> 'a -> unit
(** Insert an element whose tie-break key is the caller-supplied [rank]
    instead of an insertion sequence number.  Elements with equal
    priority pop in increasing rank order regardless of insertion
    order.  Do not mix {!push} and {!push_ranked} on one heap unless the
    two key spaces are intentionally comparable. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element; [None] when empty.
    Equal priorities come out in increasing key order. *)

val pop_if_before : 'a t -> until:float -> (float * 'a) option
(** [pop_if_before t ~until] pops the minimum element only when its
    priority is [<= until]; a single traversal replacing the
    peek-then-pop pattern on the event-loop hot path.  [~until:infinity]
    behaves like {!pop}. *)

val pop_ranked : 'a t -> until:float -> strict:bool -> (float * int * 'a) option
(** Like {!pop_if_before} but also returns the element's tie-break key
    (its rank for {!push_ranked} elements, its sequence number
    otherwise).  When [strict] the element is popped only if its
    priority is [< until] — the sharded engine's time windows are
    half-open so that boundary events land in the next window on every
    shard alike. *)

val peek : 'a t -> (float * 'a) option
(** The minimum without removing it. *)

val peek_key : 'a t -> (float * int) option
(** Priority and tie-break key of the minimum without removing it; used
    by the shard coordinator to take the minimum over per-shard heaps. *)

val clear : 'a t -> unit
(** Empty the heap, keeping the backing capacity for reuse.  No cleared
    element remains referenced by the backing store (slots are scrubbed,
    so values become collectable immediately — including slots beyond
    the live prefix left by an earlier capacity growth). *)

module Event : module type of Evheap
(** The simulator's flat event heap — same parallel-array design,
    specialized to tagged event descriptors with a non-allocating
    cursor pop; see {!Evheap}. *)
