type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

(* --- emission --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    (* Integral floats print without a trailing dot so the output stays
       valid JSON; NaN has no JSON spelling at all. *)
    if Float.is_nan f then "null" else Printf.sprintf "%.0f" f
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.12g" f in
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Assoc kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc j;
      output_char oc '\n')

(* --- parsing (enough JSON to read our own output back) --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Decode BMP code points to UTF-8.  Surrogate halves
                 (D800-DFFF) encode astral-plane characters as pairs;
                 we do not reassemble those — each half folds to '?',
                 which is lossy but keeps the parser single-pass (the
                 exporters only ever emit \u for control characters, so
                 this path never fires on our own output). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else if code >= 0xD800 && code <= 0xDFFF then
                Buffer.add_char buf '?'
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Assoc (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

(* --- accessors for consumers of parsed documents --- *)

let member key = function
  | Assoc kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

(* --- registry exporters --- *)

let json_of_sample = function
  | Metrics.Counter_sample c -> [ ("type", String "counter"); ("value", Int c) ]
  | Metrics.Gauge_sample g -> [ ("type", String "gauge"); ("value", Float g) ]
  | Metrics.Histogram_sample { uppers; counts; sum; count } ->
      [ ("type", String "histogram");
        ("count", Int count);
        ("sum", Float sum);
        ("buckets",
         List
           (Array.to_list
              (Array.mapi
                 (fun i c -> Assoc [ ("le", Float uppers.(i)); ("count", Int c) ])
                 counts))) ]

let json_of_registry reg =
  List
    (List.map
       (fun (name, help, labels, sample) ->
         Assoc
           ((("name", String name)
             :: (if help = "" then [] else [ ("help", String help) ]))
           @ (if labels = [] then []
              else
                [ ("labels", Assoc (List.map (fun (k, v) -> (k, String v)) labels)) ])
           @ json_of_sample sample))
       (Metrics.snapshot reg))

(* --- Hist / Timeseries exporters --- *)

let json_of_hist h =
  Assoc
    [ ("min_exp", Int (Hist.min_exp h));
      ("counts",
       List (List.init (Hist.buckets h) (fun i -> Int (Hist.bucket_count h i))));
      ("sum", Float (Hist.sum h)) ]

let int_list_of_json j =
  match to_list_opt j with
  | None -> None
  | Some xs ->
      let ints = List.filter_map to_int xs in
      if List.length ints = List.length xs then Some (Array.of_list ints) else None

let float_list_of_json j =
  match to_list_opt j with
  | None -> None
  | Some xs ->
      let fs = List.filter_map to_float xs in
      if List.length fs = List.length xs then Some (Array.of_list fs) else None

let hist_of_json j =
  match
    ( Option.bind (member "min_exp" j) to_int,
      Option.bind (member "counts" j) int_list_of_json,
      Option.bind (member "sum" j) to_float )
  with
  | Some min_exp, Some counts, Some sum -> (
      match Hist.of_raw ~min_exp ~counts ~sum with
      | h -> Ok h
      | exception Invalid_argument msg -> Error msg)
  | _ -> Error "hist_of_json: expected {min_exp, counts, sum}"

let json_of_timeseries ts =
  let nb = Timeseries.used ts in
  Assoc
    [ ("capacity", Int (Timeseries.capacity ts));
      ("base_resolution", Float (Timeseries.base_resolution ts));
      ("level", Int (Timeseries.level ts));
      ("counts", List (List.init nb (fun i -> Int (Timeseries.bucket_count ts i))));
      ("sums", List (List.init nb (fun i -> Float (Timeseries.bucket_sum ts i)))) ]

let timeseries_of_json j =
  match
    ( Option.bind (member "capacity" j) to_int,
      Option.bind (member "base_resolution" j) to_float,
      Option.bind (member "level" j) to_int,
      Option.bind (member "counts" j) int_list_of_json,
      Option.bind (member "sums" j) float_list_of_json )
  with
  | Some capacity, Some resolution, Some level, Some counts, Some sums -> (
      match Timeseries.of_raw ~capacity ~resolution ~level ~counts ~sums with
      | ts -> Ok ts
      | exception Invalid_argument msg -> Error msg)
  | _ ->
      Error
        "timeseries_of_json: expected {capacity, base_resolution, level, counts, \
         sums}"

let prom_escape s =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

let prom_float f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" f

let prometheus_of_registry reg =
  let buf = Buffer.create 4096 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun (name, help, labels, sample) ->
      let kind =
        match sample with
        | Metrics.Counter_sample _ -> "counter"
        | Metrics.Gauge_sample _ -> "gauge"
        | Metrics.Histogram_sample _ -> "histogram"
      in
      if not (Hashtbl.mem seen_header name) then begin
        Hashtbl.add seen_header name ();
        if help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end;
      match sample with
      | Metrics.Counter_sample c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (prom_labels labels) c)
      | Metrics.Gauge_sample g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (prom_labels labels) (prom_float g))
      | Metrics.Histogram_sample { uppers; counts; sum; count } ->
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (prom_labels (labels @ [ ("le", prom_float uppers.(i)) ]))
                   !cumulative))
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
               (prom_float sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) count))
    (Metrics.snapshot reg);
  Buffer.contents buf

(* Prometheus rendering for the always-on collectors.  The [le=] edges
   are taken straight from [Hist.uppers], which shares its geometry with
   [Metrics.histogram] — the two exposition paths agree edge for edge. *)
let prometheus_append_hist buf ~name ?(help = "") ?(labels = []) h =
  if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  let uppers = Hist.uppers h in
  let cumulative = ref 0 in
  Array.iteri
    (fun i upper ->
      cumulative := !cumulative + Hist.bucket_count h i;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name
           (prom_labels (labels @ [ ("le", prom_float upper) ]))
           !cumulative))
    uppers;
  Buffer.add_string buf
    (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
       (prom_float (Hist.sum h)));
  Buffer.add_string buf
    (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) (Hist.count h))

let prometheus_of_hist ~name ?help ?labels h =
  let buf = Buffer.create 512 in
  prometheus_append_hist buf ~name ?help ?labels h;
  Buffer.contents buf

(* A time series becomes two gauge vectors labelled by the inclusive
   bucket start time: per-bucket event counts and value sums. *)
let prometheus_append_timeseries buf ~name ?(help = "") ?(labels = []) ts =
  let emit suffix value_of =
    let metric = name ^ suffix in
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" metric help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" metric);
    for i = 0 to Timeseries.used ts - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" metric
           (prom_labels
              (labels @ [ ("t", prom_float (Timeseries.bucket_start ts i)) ]))
           (value_of i))
    done
  in
  emit "_bucket_count" (fun i -> string_of_int (Timeseries.bucket_count ts i));
  emit "_bucket_sum" (fun i -> prom_float (Timeseries.bucket_sum ts i))

let prometheus_of_timeseries ~name ?help ?labels ts =
  let buf = Buffer.create 512 in
  prometheus_append_timeseries buf ~name ?help ?labels ts;
  Buffer.contents buf
