(** Exporters: a dependency-free JSON value type with an emitter and a
    matching parser, plus registry renderers (JSON document and
    Prometheus text exposition format).

    The parser exists so tests (and downstream tooling) can read the
    exporters' own output back without an external JSON library; it
    covers the full value grammar and decodes BMP [\u] escapes to
    UTF-8.  Surrogate pairs (astral-plane characters) are not
    reassembled — each half folds to ['?']. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val to_string : json -> string
(** Compact rendering.  NaN renders as [null]; infinities as the
    out-of-range literal [1e999] (which parses back to [infinity]). *)

val to_channel : out_channel -> json -> unit

val write_file : string -> json -> unit
(** Serialize to a file, newline-terminated. *)

val of_string : string -> (json, string) result

val member : string -> json -> json option
(** Field lookup on an [Assoc]; [None] elsewhere. *)

val to_int : json -> int option
(** Also truncates a [Float]. *)

val to_float : json -> float option
(** Also widens an [Int]. *)

val to_list_opt : json -> json list option
val to_string_opt : json -> string option

val json_of_registry : Metrics.t -> json
(** One entry per series: name, labels, type and value (histograms carry
    per-bucket counts with upper edges, plus sum and count). *)

val prometheus_of_registry : Metrics.t -> string
(** Prometheus text format: # HELP / # TYPE headers, label escaping,
    cumulative [_bucket{le=...}] / [_sum] / [_count] histogram series. *)
