(** Exporters: a dependency-free JSON value type with an emitter and a
    matching parser, plus registry renderers (JSON document and
    Prometheus text exposition format).

    The parser exists so tests (and downstream tooling) can read the
    exporters' own output back without an external JSON library; it
    covers the full value grammar and decodes BMP [\u] escapes to
    UTF-8.  Surrogate pairs (astral-plane characters) are not
    reassembled — each half folds to ['?']. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val to_string : json -> string
(** Compact rendering.  NaN renders as [null]; infinities as the
    out-of-range literal [1e999] (which parses back to [infinity]). *)

val to_channel : out_channel -> json -> unit

val write_file : string -> json -> unit
(** Serialize to a file, newline-terminated. *)

val of_string : string -> (json, string) result

val member : string -> json -> json option
(** Field lookup on an [Assoc]; [None] elsewhere. *)

val to_int : json -> int option
(** Also truncates a [Float]. *)

val to_float : json -> float option
(** Also widens an [Int]. *)

val to_list_opt : json -> json list option
val to_string_opt : json -> string option

val json_of_registry : Metrics.t -> json
(** One entry per series: name, labels, type and value (histograms carry
    per-bucket counts with upper edges, plus sum and count). *)

val prometheus_of_registry : Metrics.t -> string
(** Prometheus text format: # HELP / # TYPE headers, label escaping,
    cumulative [_bucket{le=...}] / [_sum] / [_count] histogram series. *)

(** {2 Always-on collector exposition}

    The mergeable {!Hist} / {!Timeseries} collectors round-trip through
    JSON ([x = of_json (to_json x)] bucket for bucket — exported sums
    are exact multiples of {!Hist.quantum}) and render to the same
    Prometheus text format as the registry, with [le=] edges exactly
    {!Hist.uppers}. *)

val json_of_hist : Hist.t -> json
val hist_of_json : json -> (Hist.t, string) result

val json_of_timeseries : Timeseries.t -> json
val timeseries_of_json : json -> (Timeseries.t, string) result

val prometheus_append_hist :
  Buffer.t -> name:string -> ?help:string -> ?labels:(string * string) list ->
  Hist.t -> unit

val prometheus_of_hist :
  name:string -> ?help:string -> ?labels:(string * string) list -> Hist.t ->
  string
(** Cumulative [_bucket{le=...}] / [_sum] / [_count] lines whose [le=]
    edges are exactly [Hist.uppers] — byte-compatible with a
    {!Metrics.histogram} of the same shape. *)

val prometheus_append_timeseries :
  Buffer.t -> name:string -> ?help:string -> ?labels:(string * string) list ->
  Timeseries.t -> unit

val prometheus_of_timeseries :
  name:string -> ?help:string -> ?labels:(string * string) list ->
  Timeseries.t -> string
(** Two gauge vectors, [<name>_bucket_count{t=...}] and
    [<name>_bucket_sum{t=...}], labelled by inclusive bucket start
    time. *)
