(* Mergeable HDR-style log-bucketed histogram.

   Bucket geometry is identical to Metrics.histogram — bin 0 collects
   values <= 0, bin i (1 <= i < n-1) the upper-inclusive range
   (2^(i-2+min_exp), 2^(i-1+min_exp)], last bin overflow — so the
   Prometheus exporter can emit the exact same le= edges for both.

   The twist relative to Metrics.histogram is [merge]: per-shard local
   collectors are folded together at epoch barriers, and the result must
   be byte-identical for every shard count.  Bucket counts are ints, so
   their addition is exact; the running sum would NOT be (float addition
   is commutative but not associative, and each shard accumulates its
   own subsequence), so the sum is kept in fixed point — an integer
   count of 2^-26 quanta (~15 ns when the unit is seconds).  Integer
   addition is exact, hence merge is commutative AND associative, hence
   shard-order-independent. *)

type t = {
  counts : int array; (* [0]: <= 0; [i]: (2^(i-2+min_exp), 2^(i-1+min_exp)];
                         last: overflow *)
  min_exp : int;
  mutable count : int;
  mutable sum_q : int; (* fixed-point: value * 2^26, rounded to nearest *)
}

let quantum = 0x1p-26

let create ?(buckets = 32) ?(min_exp = 0) () =
  if buckets < 3 then invalid_arg "Hist.create: need at least 3 buckets";
  { counts = Array.make buckets 0; min_exp; count = 0; sum_q = 0 }

let copy t = { t with counts = Array.copy t.counts }

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.count <- 0;
  t.sum_q <- 0

let buckets t = Array.length t.counts
let min_exp t = t.min_exp
let count t = t.count
let bucket_count t i = t.counts.(i)

let quantize v = int_of_float (Float.round (v *. 0x1p26))
let sum t = float_of_int t.sum_q *. quantum
let mean t = if t.count = 0 then 0.0 else sum t /. float_of_int t.count

(* Same exponent extraction as Metrics.bucket_index: ceil log2 because
   edges are upper-inclusive. *)
let bucket_index t v =
  if v <= 0.0 then 0
  else begin
    let n = Array.length t.counts in
    if not (v < infinity) then n - 1
    else begin
      let e = int_of_float (Float.ceil (Float.log2 v)) in
      let i = e - t.min_exp + 1 in
      if i < 1 then 1 else if i >= n then n - 1 else i
    end
  end

let record t v =
  t.counts.(bucket_index t v) <- t.counts.(bucket_index t v) + 1;
  t.count <- t.count + 1;
  t.sum_q <- t.sum_q + quantize v

let bucket_upper t i =
  let n = Array.length t.counts in
  if i <= 0 then 0.0
  else if i >= n - 1 then infinity
  else Float.pow 2.0 (float_of_int (i - 1 + t.min_exp))

let uppers t = Array.init (Array.length t.counts) (bucket_upper t)

let same_shape a b =
  Array.length a.counts = Array.length b.counts && a.min_exp = b.min_exp

let merge_into ~into src =
  if not (same_shape into src) then
    invalid_arg "Hist.merge_into: incompatible bucket shapes";
  for i = 0 to Array.length into.counts - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.count <- into.count + src.count;
  into.sum_q <- into.sum_q + src.sum_q

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

(* Deterministic quantile: the inclusive upper edge of the first bucket
   whose cumulative count reaches ceil(q * total).  Pure integer
   arithmetic over the bucket counts, so any two histograms with equal
   counts report equal quantiles. *)
let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.quantile: q outside [0,1]";
  if t.count = 0 then 0.0
  else begin
    let target =
      let x = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else x
    in
    let n = Array.length t.counts in
    let rec go i acc =
      if i >= n then infinity
      else
        let acc = acc + t.counts.(i) in
        if acc >= target then bucket_upper t i else go (i + 1) acc
    in
    go 0 0
  end

let p50 t = quantile t 0.5
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99

(* Rebuild from exported raw state (Export round-trips through this).
   [count] is derivable — every record increments exactly one bucket —
   and [sum] re-quantizes exactly because exported sums are exact
   multiples of [quantum]. *)
let of_raw ~min_exp ~counts ~sum =
  if Array.length counts < 3 then invalid_arg "Hist.of_raw: need at least 3 buckets";
  { counts = Array.copy counts;
    min_exp;
    count = Array.fold_left ( + ) 0 counts;
    sum_q = quantize sum }
