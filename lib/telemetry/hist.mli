(** Mergeable HDR-style log-bucketed histogram.

    Bucket geometry matches {!Metrics.histogram} exactly — bin 0
    collects values [<= 0], bin [i] ([1 <= i < buckets-1]) the
    upper-inclusive range [(2^(i-2+min_exp), 2^(i-1+min_exp)]], last bin
    overflow — so Prometheus [le=] edges agree between the two.

    Unlike [Metrics.histogram], a [Hist.t] is built to be {e merged}:
    per-shard local collectors are combined at epoch barriers, and the
    combined result must be byte-identical for every shard count.
    Bucket counts are ints and the value sum is held in fixed point
    ({!quantum} units), so {!merge} is exact integer addition —
    commutative {e and} associative, hence independent of merge order.

    [record] is O(1) and allocation-free. *)

type t

val quantum : float
(** Fixed-point resolution of the value sum: [2^-26] (~15 ns when the
    recorded unit is seconds).  Sums are exact multiples of this. *)

val quantize : float -> int
(** Round a value to the nearest multiple of {!quantum}, as an integer
    count of quanta — the representation {!sum} accumulates in. *)

val create : ?buckets:int -> ?min_exp:int -> unit -> t
(** [buckets] defaults to 32 (minimum 3); [min_exp] to 0, making bin 1
    the range [(0, 1]].  Raises [Invalid_argument] on fewer than 3
    buckets. *)

val copy : t -> t
val clear : t -> unit

val record : t -> float -> unit
(** Count a value: one array increment, one int add.  No allocation. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] (exact integer addition).  Raises
    [Invalid_argument] when bucket shapes differ. *)

val merge : t -> t -> t
(** Pure merge into a fresh histogram; commutative and associative. *)

val buckets : t -> int
val min_exp : t -> int
val count : t -> int

val sum : t -> float
(** Sum of recorded values, quantized to {!quantum}. *)

val mean : t -> float

val bucket_count : t -> int -> int
val bucket_index : t -> float -> int

val bucket_upper : t -> int -> float
(** Inclusive upper edge of a bin; [+inf] for the overflow bin. *)

val uppers : t -> float array
(** All upper edges, index-aligned with bucket counts — exactly the
    [le=] edges the Prometheus exporter must emit. *)

val quantile : t -> float -> float
(** [quantile t q] is the inclusive upper edge of the first bucket whose
    cumulative count reaches [ceil (q * count)] — a deterministic,
    integer-arithmetic upper-bound estimate.  [0.0] when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val of_raw : min_exp:int -> counts:int array -> sum:float -> t
(** Rebuild a histogram from exported state ({!Export.hist_of_json}):
    the total count is the bucket sum, and [sum] — an exact multiple of
    {!quantum} in any exported document — re-quantizes losslessly.
    Raises [Invalid_argument] on fewer than 3 buckets. *)
