type 'a t = {
  capacity : int;
  ring : 'a option array;
  mutable next : int;
  mutable total : int;
  (* Single-writer guard: the domain id that owns the ring (-1 =
     unclaimed).  The ring indices are plain mutable fields, so
     concurrent [record] from two domains would corrupt them silently;
     instead the first recording domain claims the journal and any other
     writer fails loudly.  Per-domain journals merged at collection are
     the supported multi-domain pattern (see the @trace stress test). *)
  owner : int Atomic.t;
}

let unclaimed = -1

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0;
    owner = Atomic.make unclaimed }

let capacity t = t.capacity

let check_owner t =
  let self = (Domain.self () :> int) in
  let owner = Atomic.get t.owner in
  if
    owner <> self
    && not (owner = unclaimed && Atomic.compare_and_set t.owner unclaimed self)
  then
    invalid_arg
      (Printf.sprintf
         "Journal.record: journal owned by domain %d, write from domain %d \
          (use one journal per domain and merge at collection)"
         (Atomic.get t.owner) self)

let record t x =
  check_owner t;
  t.ring.(t.next) <- Some x;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let total t = t.total
let retained t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let iter t f =
  (* Oldest first: the slot after [next] holds the oldest survivor once
     the ring has wrapped. *)
  for i = 0 to t.capacity - 1 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some x -> f x
    | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  Atomic.set t.owner unclaimed
