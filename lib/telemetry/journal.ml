type 'a t = {
  capacity : int;
  ring : 'a array;
  mutable next : int;
  mutable total : int;
  (* Single-writer guard: the domain id that owns the ring (-1 =
     unclaimed).  The ring indices are plain mutable fields, so
     concurrent [record] from two domains would corrupt them silently;
     instead the first recording domain claims the journal and any other
     writer fails loudly.  Per-domain journals merged at collection are
     the supported multi-domain pattern (see the @trace stress test). *)
  owner : int Atomic.t;
}

let unclaimed = -1

(* Empty slots hold an immediate sentinel rather than [None]: recording
   then costs zero allocation (the old option array boxed a [Some] per
   record on the telemetry fast path).  The sentinel is never read —
   [total]/[next] delimit the filled region exactly.  Consequence: the
   element type must be boxed or immediate (records, variants, ints);
   [float Journal.t] would need a flat array and is not supported. *)
let none : 'a = Obj.magic 0

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  { capacity; ring = Array.make capacity none; next = 0; total = 0;
    owner = Atomic.make unclaimed }

let capacity t = t.capacity

let check_owner t =
  let self = (Domain.self () :> int) in
  let owner = Atomic.get t.owner in
  if
    owner <> self
    && not (owner = unclaimed && Atomic.compare_and_set t.owner unclaimed self)
  then
    invalid_arg
      (Printf.sprintf
         "Journal.record: journal owned by domain %d, write from domain %d \
          (use one journal per domain and merge at collection)"
         (Atomic.get t.owner) self)

let record t x =
  check_owner t;
  t.ring.(t.next) <- x;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

(* The value the next [record] will evict, once the ring has wrapped.
   Callers that own their element type can mutate it in place and hand
   it straight back to [record] — a free-list of size one, which is all
   a ring buffer ever evicts per write. *)
let recycle t =
  if t.total >= t.capacity then Some t.ring.(t.next) else None

let total t = t.total
let retained t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let iter t f =
  (* Oldest first: the slot after [next] holds the oldest survivor once
     the ring has wrapped. *)
  if t.total <= t.capacity then
    for i = 0 to t.total - 1 do
      f t.ring.(i)
    done
  else
    for i = 0 to t.capacity - 1 do
      f t.ring.((t.next + i) mod t.capacity)
    done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let clear t =
  Array.fill t.ring 0 t.capacity none;
  t.next <- 0;
  t.total <- 0;
  Atomic.set t.owner unclaimed
