type 'a t = {
  capacity : int;
  ring : 'a option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let capacity t = t.capacity

let record t x =
  t.ring.(t.next) <- Some x;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let total t = t.total
let retained t = min t.total t.capacity
let dropped t = max 0 (t.total - t.capacity)

let iter t f =
  (* Oldest first: the slot after [next] holds the oldest survivor once
     the ring has wrapped. *)
  for i = 0 to t.capacity - 1 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some x -> f x
    | None -> ()
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0
