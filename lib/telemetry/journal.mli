(** Bounded typed event journal.

    A fixed-capacity ring of structured records: recording is O(1) and
    the memory footprint is set at creation no matter how many events
    flow through — under sustained load the journal keeps the newest
    [capacity] records and counts the rest as dropped.  This is the one
    storage primitive behind {!Netsim.Probe}, {!Netsim.Tracer},
    {!Netsim.Meter} and {!Span}.

    {b Single-writer}: the ring indices are plain mutable fields, so a
    journal belongs to one domain — the first domain to {!record} after
    creation (or after {!clear}) claims it, and a [record] from any
    other domain raises [Invalid_argument] instead of silently racing
    the indices.  Under a domain pool (e.g. [mrdetect all --jobs N])
    create one journal per domain and merge their {!to_list} views at
    collection time.  Reads ({!iter}, {!fold}, {!to_list}) are not
    guarded: perform them on the owning domain, or after the owner is
    done. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 65536 records.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val capacity : 'a t -> int

val record : 'a t -> 'a -> unit
(** Append, evicting the oldest record once full.  Raises
    [Invalid_argument] when called from a domain other than the
    journal's owner (the first domain that recorded). *)

val recycle : 'a t -> 'a option
(** The record the next {!record} will evict, or [None] until the ring
    has wrapped.  A caller that owns the element type may mutate the
    returned value in place and pass it straight back to {!record},
    turning sustained full-rate recording into a zero-allocation loop —
    provided no other reference to the evicted record is live (see
    {!Span}'s pinning rules for an example of excluding retained
    records). *)

val total : 'a t -> int
(** Records ever offered (including evicted ones). *)

val retained : 'a t -> int
(** Records currently held: [min total capacity]. *)

val dropped : 'a t -> int
(** Records evicted so far: [max 0 (total - capacity)]. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit the retained records, oldest first. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val to_list : 'a t -> 'a list
(** The retained records, oldest first. *)

val clear : 'a t -> unit
(** Drop every record, reset the counters and release domain
    ownership (the next {!record} claims it afresh). *)
