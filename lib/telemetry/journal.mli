(** Bounded typed event journal.

    A fixed-capacity ring of structured records: recording is O(1) and
    the memory footprint is set at creation no matter how many events
    flow through — under sustained load the journal keeps the newest
    [capacity] records and counts the rest as dropped.  This is the one
    storage primitive behind {!Netsim.Probe}, {!Netsim.Tracer} and
    {!Netsim.Meter}. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 65536 records.  Raises [Invalid_argument] on a
    non-positive capacity. *)

val capacity : 'a t -> int

val record : 'a t -> 'a -> unit
(** Append, evicting the oldest record once full. *)

val total : 'a t -> int
(** Records ever offered (including evicted ones). *)

val retained : 'a t -> int
(** Records currently held: [min total capacity]. *)

val dropped : 'a t -> int
(** Records evicted so far: [max 0 (total - capacity)]. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit the retained records, oldest first. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val to_list : 'a t -> 'a list
(** The retained records, oldest first. *)

val clear : 'a t -> unit
