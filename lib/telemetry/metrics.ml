type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  counts : int array; (* [0]: <= 0; [i]: (2^(i-2+min_exp), 2^(i-1+min_exp)];
                         last: overflow *)
  min_exp : int;
  mutable h_count : int;
  mutable h_sum : float;
}

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of { uppers : float array; counts : int array;
                          sum : float; count : int }

type kind = C of counter | G of gauge | H of histogram

type series = {
  name : string;
  help : string;
  labels : (string * string) list;
  kind : kind;
}

type t = { mutable series_rev : series list }

let create () = { series_rev = [] }

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

(* Registration is the cold path: a linear scan keeps re-registration of
   the same (name, labels) series idempotent, which is what makes label
   families cheap to use from per-entity code. *)
let find t name labels =
  List.find_opt (fun s -> s.name = name && s.labels = labels) t.series_rev

let register t ~name ~help ~labels ~fresh ~cast =
  let labels = normalize_labels labels in
  match find t name labels with
  | Some s -> cast s.kind
  | None ->
      let kind = fresh () in
      t.series_rev <- { name; help; labels; kind } :: t.series_rev;
      cast kind

let counter t ?(help = "") ?(labels = []) name =
  register t ~name ~help ~labels
    ~fresh:(fun () -> C { c = 0 })
    ~cast:(function
      | C c -> c
      | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))

let gauge t ?(help = "") ?(labels = []) name =
  register t ~name ~help ~labels
    ~fresh:(fun () -> G { g = 0.0 })
    ~cast:(function
      | G g -> g
      | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge"))

let histogram t ?(help = "") ?(labels = []) ?(buckets = 32) ?(min_exp = 0) name =
  if buckets < 3 then invalid_arg "Metrics.histogram: need at least 3 buckets";
  register t ~name ~help ~labels
    ~fresh:(fun () ->
      H { counts = Array.make buckets 0; min_exp; h_count = 0; h_sum = 0.0 })
    ~cast:(function
      | H h -> h
      | C _ | G _ ->
          invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

let inc c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let set g v = g.g <- v
let add_gauge g v = g.g <- g.g +. v
let gauge_value g = g.g

(* Hot path: an exponent extraction, a clamp and two in-place updates —
   no allocation beyond float temporaries. *)
let bucket_index h v =
  if v <= 0.0 then 0
  else begin
    let n = Array.length h.counts in
    (* not (v < infinity) also catches NaN; int_of_float of either is
       unspecified, so route both to the overflow bin explicitly. *)
    if not (v < infinity) then n - 1
    else begin
      (* ceil, not floor: buckets are upper-inclusive (2^(e-1), 2^e] so
         they agree with the le= edges the Prometheus exporter emits. *)
      let e = int_of_float (Float.ceil (Float.log2 v)) in
      let i = e - h.min_exp + 1 in
      if i < 1 then 1 else if i >= n then n - 1 else i
    end
  end

let observe h v =
  h.counts.(bucket_index h v) <- h.counts.(bucket_index h v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Inclusive upper edge of bucket [i]; the overflow bucket has edge
   +inf. *)
let bucket_upper h i =
  let n = Array.length h.counts in
  if i <= 0 then 0.0
  else if i >= n - 1 then infinity
  else Float.pow 2.0 (float_of_int (i - 1 + h.min_exp))

let snapshot_series s =
  let sample =
    match s.kind with
    | C c -> Counter_sample c.c
    | G g -> Gauge_sample g.g
    | H h ->
        Histogram_sample
          { uppers = Array.init (Array.length h.counts) (bucket_upper h);
            counts = Array.copy h.counts; sum = h.h_sum; count = h.h_count }
  in
  (s.name, s.help, s.labels, sample)

let snapshot t = List.rev_map snapshot_series t.series_rev
