(** Metrics registry: labeled counters, gauges and log-bucketed
    histograms.

    Registration (the cold path) resolves a (name, label set) pair to a
    handle; the hot path works on the handle alone — an {!inc} is a
    single in-place integer update and an {!observe} an exponent
    extraction plus two in-place updates, so instrumentation can stay in
    per-packet code.  Registering the same (name, labels) twice returns
    the same handle, so label families ("per router", "per drop cause")
    need no bookkeeping at the call site. *)

type t
(** A registry: an ordered collection of metric series. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or look up) a monotone integer counter. Raises
    [Invalid_argument] if the series exists with a different type. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Register (or look up) a float gauge. *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:int ->
  ?min_exp:int ->
  string ->
  histogram
(** Register a base-2 log-bucketed histogram with [buckets] bins
    (default 32, minimum 3): bin 0 collects values [<= 0], bin [i]
    ([1 <= i < buckets-1]) the half-open range
    [(2^(i-2+min_exp), 2^(i-1+min_exp)]] (so with the default
    [min_exp = 0], bin 1 is everything in [(0, 1]]), and the last bin is
    the overflow.  Raises [Invalid_argument] for fewer than 3 buckets. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val bucket_index : histogram -> float -> int
(** The bin {!observe} would count a value into (exposed for tests and
    exporters). *)

val bucket_upper : histogram -> int -> float
(** Inclusive upper edge of a bin; [+inf] for the overflow bin. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of { uppers : float array; counts : int array;
                          sum : float; count : int }

val snapshot : t -> (string * string * (string * string) list * sample) list
(** [(name, help, labels, sample)] for every registered series in
    registration order — the only view exporters need. *)
