type phase = {
  name : string;
  mutable seconds : float;
  mutable calls : int;
}

type t = { mutable phases_rev : phase list }

let create () = { phases_rev = [] }

let phase t name =
  match List.find_opt (fun p -> p.name = name) t.phases_rev with
  | Some p -> p
  | None ->
      let p = { name; seconds = 0.0; calls = 0 } in
      t.phases_rev <- p :: t.phases_rev;
      p

let time t name f =
  let p = phase t name in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      p.seconds <- p.seconds +. (Unix.gettimeofday () -. t0);
      p.calls <- p.calls + 1)
    f

let phases t =
  List.rev_map (fun p -> (p.name, p.seconds, p.calls)) t.phases_rev

let total_seconds t =
  List.fold_left (fun acc p -> acc +. p.seconds) 0.0 t.phases_rev

let json t =
  Export.List
    (List.map
       (fun (name, seconds, calls) ->
         Export.Assoc
           [ ("phase", Export.String name);
             ("wall_seconds", Export.Float seconds);
             ("calls", Export.Int calls) ])
       (phases t))
