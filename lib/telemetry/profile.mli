(** Run profiling: named wall-clock phase accumulators.

    Wrap each stage of a run ([setup], [run], [report], ...) in
    {!time}; the per-phase wall seconds and call counts come out in the
    run summary, which is how simulator self-performance ("events/sec,
    wall-clock per phase") is tracked from PR to PR. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, charging its wall-clock time to the named phase
    (accumulating across calls; exception-safe). *)

val phases : t -> (string * float * int) list
(** [(name, accumulated wall seconds, calls)] in first-use order. *)

val total_seconds : t -> float

val json : t -> Export.json
