type id = int

let network_pid = 1
let detector_pid = 2

type kind =
  | Complete of { mutable duration : float }
  | Instant
  | Verdict of {
      detector : string;
      subject : int option;
      suspects : int list;
      confidence : float option;
      alarm : bool;
      detail : string;
      evidence : id list;
    }

(* Inline-field sentinel: hop entries carry their two routers and the
   packet uid as immediate ints instead of [routers]/[args] lists, so
   the full-rate tracing path allocates one record per span rather than
   a record plus four list cells and two boxes.  [no_field] marks an
   absent inline field; router ids and uids are non-negative, so the
   sentinel can never collide. *)
let no_field = min_int

(* The hop-entry fields are mutable so evicted hop records can be
   recycled in place on the full-rate path (see [hop_span]); [cat],
   [routers], [args] and [kind] stay immutable — recycling is restricted
   to entries where those already hold the hop-span values. *)
type entry = {
  mutable id : id;
  mutable trace : int;
  mutable name : string;
  cat : string;
  mutable pid : int;
  mutable tid : int;
  mutable time : float;
  routers : int list;
  args : (string * Export.json) list;
  mutable hop_r1 : int;
  mutable hop_r2 : int;
  mutable hop_pkt : int;
  kind : kind;
}

let entry_routers e =
  if e.routers <> [] then e.routers
  else if e.hop_r1 = no_field then []
  else if e.hop_r2 = no_field then [ e.hop_r1 ]
  else [ e.hop_r1; e.hop_r2 ]

let entry_args e =
  if e.hop_pkt = no_field then e.args
  else
    ("pkt", Export.Int e.hop_pkt) :: ("next", Export.Int e.hop_r2) :: e.args

type t = {
  ring : entry Journal.t;
  flight : int;
  sample : float;
  rng : Random.State.t;
  mutable next_id : int;
  mutable next_trace : int;
  mutable traces_started : int;
  mutable traces_sampled : int;
  processes : (int, string) Hashtbl.t;
  threads : (int * int, string) Hashtbl.t;
  thread_ids : (int * string, int) Hashtbl.t;
  next_tid : (int, int) Hashtbl.t;
  (* Flight recorder: entries pinned against ring eviction. *)
  mutable flight_rev : entry list;
  pinned_ids : (id, unit) Hashtbl.t;
}

let create ?(capacity = 65536) ?(flight = 256) ?(sample = 1.0) ?(seed = 0) () =
  if flight < 0 then invalid_arg "Span.create: flight window must be non-negative";
  if not (Float.is_finite sample) || sample < 0.0 || sample > 1.0 then
    invalid_arg "Span.create: sample must lie in [0,1]";
  let t =
    { ring = Journal.create ~capacity ();
      flight;
      sample;
      rng = Random.State.make [| 0x7370616e; seed |];
      next_id = 1;
      next_trace = 1;
      traces_started = 0;
      traces_sampled = 0;
      processes = Hashtbl.create 4;
      threads = Hashtbl.create 16;
      thread_ids = Hashtbl.create 16;
      next_tid = Hashtbl.create 4;
      flight_rev = [];
      pinned_ids = Hashtbl.create 64 }
  in
  Hashtbl.replace t.processes network_pid "netsim";
  Hashtbl.replace t.processes detector_pid "detectors";
  t

let sample_rate t = t.sample
let flight_window t = t.flight

let new_trace t =
  t.traces_started <- t.traces_started + 1;
  (* Draw even at rate 1.0 so switching the rate never perturbs which
     packets later draws select (the stream position stays aligned). *)
  let coin = Random.State.float t.rng 1.0 in
  if t.sample > 0.0 && (t.sample >= 1.0 || coin < t.sample) then begin
    t.traces_sampled <- t.traces_sampled + 1;
    let id = t.next_trace in
    t.next_trace <- t.next_trace + 1;
    Some id
  end
  else None

let traces_started t = t.traces_started
let traces_sampled t = t.traces_sampled

let set_process t ~pid name = Hashtbl.replace t.processes pid name

let set_thread t ~pid ~tid name =
  Hashtbl.replace t.threads (pid, tid) name;
  Hashtbl.replace t.thread_ids (pid, name) tid

let thread t ~pid name =
  match Hashtbl.find_opt t.thread_ids (pid, name) with
  | Some tid -> tid
  | None ->
      let tid = Option.value ~default:0 (Hashtbl.find_opt t.next_tid pid) in
      Hashtbl.replace t.next_tid pid (tid + 1);
      set_thread t ~pid ~tid name;
      tid

let process_names t = Hashtbl.fold (fun pid n acc -> (pid, n) :: acc) t.processes []
let thread_names t = Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.threads []

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let span t ?(trace = 0) ~name ?(cat = "") ~pid ~tid ~start ~finish ?(routers = [])
    ?(args = []) () =
  let id = fresh_id t in
  Journal.record t.ring
    { id; trace; name; cat; pid; tid; time = start; routers; args;
      hop_r1 = no_field; hop_r2 = no_field; hop_pkt = no_field;
      kind = Complete { duration = Float.max 0.0 (finish -. start) } };
  id

let instant t ?(trace = 0) ~name ?(cat = "") ~pid ~tid ~time ?(routers = [])
    ?(args = []) () =
  let id = fresh_id t in
  Journal.record t.ring
    { id; trace; name; cat; pid; tid; time; routers; args;
      hop_r1 = no_field; hop_r2 = no_field; hop_pkt = no_field;
      kind = Instant };
  id

(* The full-rate tracing fast path: a per-hop span whose two routers
   and packet uid live in inline int fields (exported identically to
   [~routers:[router; next] ~args:[("pkt", ...); ("next", ...)]]).

   Once the ring has wrapped, the entry being evicted is recycled in
   place instead of allocating a fresh record — but only when it is
   itself an unpinned hop entry, so the immutable [cat]/[routers]/
   [args] fields already hold the hop-span values and no reference to
   it survives in the flight recorder.  Sustained full-rate tracing
   then allocates only the boxed float writes, not a record plus a
   [Complete] block per hop. *)
let hop_span t ~trace ~name ~pid ~tid ~start ~finish ~router ~next ~pkt =
  let id = fresh_id t in
  let duration = Float.max 0.0 (finish -. start) in
  let recycled =
    match Journal.recycle t.ring with
    | Some e
      when e.hop_pkt <> no_field && not (Hashtbl.mem t.pinned_ids e.id) -> (
        match e.kind with
        | Complete c ->
            e.id <- id;
            e.trace <- trace;
            e.name <- name;
            e.pid <- pid;
            e.tid <- tid;
            e.time <- start;
            e.hop_r1 <- router;
            e.hop_r2 <- next;
            e.hop_pkt <- pkt;
            c.duration <- duration;
            Journal.record t.ring e;
            true
        | Instant | Verdict _ -> false)
    | _ -> false
  in
  if not recycled then
    Journal.record t.ring
      { id; trace; name; cat = "hop"; pid; tid; time = start; routers = [];
        args = []; hop_r1 = router; hop_r2 = next; hop_pkt = pkt;
        kind = Complete { duration } };
  id

(* --- flight recorder --- *)

let pin_entry t e =
  if not (Hashtbl.mem t.pinned_ids e.id) then begin
    Hashtbl.add t.pinned_ids e.id ();
    t.flight_rev <- e :: t.flight_rev
  end

(* Pin every evidence entry still in the ring, plus the newest [flight]
   entries mentioning any of the routers (all retained entries when
   [routers] is empty). *)
let pin_window t ~routers ~evidence =
  let wanted = Hashtbl.create (List.length evidence * 2) in
  List.iter (fun id -> Hashtbl.replace wanted id ()) evidence;
  let matched = ref [] in
  Journal.iter t.ring (fun e ->
      if Hashtbl.mem wanted e.id then pin_entry t e
      else if
        routers = []
        || List.exists (fun r -> List.mem r routers) (entry_routers e)
      then matched := e :: !matched);
  (* [matched] is newest-first: pin the window head. *)
  List.iteri (fun i e -> if i < t.flight then pin_entry t e) !matched

let pin_recent t ?(routers = []) () =
  pin_window t ~routers ~evidence:[];
  Hashtbl.length t.pinned_ids

let verdict t ~time ~detector ?subject ?(suspects = []) ?confidence ~alarm
    ?(detail = "") ?(evidence = []) () =
  let tid = thread t ~pid:detector_pid detector in
  let implicated =
    List.sort_uniq compare
      ((match subject with Some s -> [ s ] | None -> []) @ suspects)
  in
  pin_window t ~routers:implicated ~evidence;
  let id = fresh_id t in
  let e =
    { id; trace = 0; name = detector ^ " verdict"; cat = "verdict"; pid = detector_pid;
      tid; time; routers = implicated; args = [];
      hop_r1 = no_field; hop_r2 = no_field; hop_pkt = no_field;
      kind =
        Verdict { detector; subject; suspects; confidence; alarm; detail; evidence } }
  in
  Journal.record t.ring e;
  pin_entry t e;
  id

(* --- reading --- *)

let entries t =
  let acc = ref [] in
  let in_ring = Hashtbl.create 256 in
  Journal.iter t.ring (fun e ->
      Hashtbl.replace in_ring e.id ();
      acc := e :: !acc);
  List.iter
    (fun e -> if not (Hashtbl.mem in_ring e.id) then acc := e :: !acc)
    t.flight_rev;
  List.sort
    (fun a b ->
      match compare a.time b.time with 0 -> compare a.id b.id | c -> c)
    !acc

let find t id =
  let found = ref None in
  Journal.iter t.ring (fun e -> if e.id = id then found := Some e);
  (match !found with
  | Some _ -> ()
  | None ->
      List.iter (fun e -> if e.id = id then found := Some e) t.flight_rev);
  !found

let recorded t = Journal.total t.ring
let dropped t = Journal.dropped t.ring
let pinned t = List.length t.flight_rev
