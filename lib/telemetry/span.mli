(** Causal spans, traces and verdict provenance.

    A span collector is the distributed-tracing layer on top of
    {!Journal}: a bounded ring of timed entries — {e spans} (an interval
    on a (pid, tid) track: a packet's residency in an output queue, a
    link transmission, a detector's validation round), {e instants}
    (point events: a drop, a MAC check, a summary dispatch) and
    {e verdict provenance records} (a detector's accusation together
    with the entry ids of the evidence that justified it).

    Entries carry simulation-clock timestamps and belong to {e traces}:
    a trace id is minted per injected packet (subject to the collector's
    sampling rate) and carried hop by hop, so every entry a packet
    produced anywhere in the network shares its trace id.  Track
    conventions: {!network_pid} hosts one thread per router
    (tid = router id), {!detector_pid} one thread per detector/protocol
    (tids assigned on first use via {!thread}).

    The collector doubles as a {e flight recorder}: recording a verdict
    pins the referenced evidence entries, the verdict itself, and the
    most recent [flight] entries mentioning the implicated routers, so
    they survive ring eviction and are guaranteed to appear in an
    exported trace file no matter how much traffic follows
    ({!Trace_export}).

    Like {!Journal}, a collector is single-domain: entries are recorded
    from simulator callbacks on one domain (the underlying journal's
    writer guard enforces this). *)

type t

type id = int
(** Entry identifier, unique and monotonically increasing within a
    collector; 0 is never issued (verdicts can use it as "no entry"). *)

val network_pid : int
(** Track group for the forwarding plane: tid = router id. *)

val detector_pid : int
(** Track group for detectors and protocols: tids from {!thread}. *)

type kind =
  | Complete of { mutable duration : float }
      (** a span: [time .. time+duration] *)
  | Instant
  | Verdict of {
      detector : string;
      subject : int option;
      suspects : int list;
      confidence : float option;
      alarm : bool;
      detail : string;
      evidence : id list;  (** entry ids justifying the accusation *)
    }

(** Hop-entry fields are mutable so the collector can recycle evicted
    hop records in place on the full-rate path (see {!hop_span}); hold
    no reference to an entry across further recording — read what you
    need while iterating. *)
type entry = {
  mutable id : id;
  mutable trace : int;  (** trace id; 0 = not part of a packet trace *)
  mutable name : string;
  cat : string;
  mutable pid : int;
  mutable tid : int;
  mutable time : float;  (** seconds (sim clock); start time for spans *)
  routers : int list;  (** routers this entry concerns (flight-recorder key) *)
  args : (string * Export.json) list;
  mutable hop_r1 : int;  (** inline router/packet fields used by {!hop_span} *)
  mutable hop_r2 : int;  (** in place of [routers]/[args]; {!no_field} =    *)
  mutable hop_pkt : int; (** absent.  Read via {!entry_routers}/{!entry_args}. *)
  kind : kind;
}

val no_field : int
(** Sentinel marking an absent inline [hop_*] field. *)

val entry_routers : entry -> int list
(** The routers an entry concerns: [routers] or the inline hop pair. *)

val entry_args : entry -> (string * Export.json) list
(** The entry's args with any inline hop fields materialized (as
    [("pkt", ...); ("next", ...)], matching what {!span} callers used to
    pass) — what exporters must serialize. *)

val create :
  ?capacity:int -> ?flight:int -> ?sample:float -> ?seed:int -> unit -> t
(** A fresh collector.  [capacity] bounds the entry ring (default
    65536); [flight] is the per-verdict pinned-window size N — the
    newest N entries mentioning the implicated routers are preserved on
    each verdict (default 256); [sample] is the per-trace sampling
    probability in [0,1] (default 1.0), drawn deterministically from
    [seed].  Raises [Invalid_argument] on out-of-range arguments. *)

val sample_rate : t -> float
val flight_window : t -> int

val new_trace : t -> int option
(** Mint a trace id for a newly injected packet, or [None] if the
    sampling coin says this packet goes untraced. *)

val traces_started : t -> int
(** Packets offered to {!new_trace}. *)

val traces_sampled : t -> int
(** Trace ids actually minted. *)

(* --- track naming (exported as Chrome metadata events) --- *)

val set_process : t -> pid:int -> string -> unit

val set_thread : t -> pid:int -> tid:int -> string -> unit
(** Name an explicit track, e.g. router 3 as ["r3"] on
    {!network_pid}. *)

val thread : t -> pid:int -> string -> int
(** The tid for a named track, assigned on first use (0, 1, ... per
    pid) — how detector tracks get their lanes. *)

val process_names : t -> (int * string) list
val thread_names : t -> ((int * int) * string) list

(* --- recording --- *)

val span :
  t ->
  ?trace:int ->
  name:string ->
  ?cat:string ->
  pid:int ->
  tid:int ->
  start:float ->
  finish:float ->
  ?routers:int list ->
  ?args:(string * Export.json) list ->
  unit ->
  id
(** Record a completed interval (a Chrome "X" event); a [finish] before
    [start] is clamped to a zero-duration span. *)

val hop_span :
  t ->
  trace:int ->
  name:string ->
  pid:int ->
  tid:int ->
  start:float ->
  finish:float ->
  router:int ->
  next:int ->
  pkt:int ->
  id
(** {!span} specialized for the full-rate per-hop path (cat ["hop"]):
    equivalent to [span ~routers:[router; next]
    ~args:[("pkt", Int pkt); ("next", Int next)]] but the three values
    live in inline int fields, so recording allocates one entry record
    instead of a record plus list cells — exporters see identical
    output via {!entry_routers}/{!entry_args}.  Once the ring has
    wrapped, the evicted record is recycled in place when it is itself
    an unpinned hop entry, making sustained full-rate tracing
    allocation-free per hop. *)

val instant :
  t ->
  ?trace:int ->
  name:string ->
  ?cat:string ->
  pid:int ->
  tid:int ->
  time:float ->
  ?routers:int list ->
  ?args:(string * Export.json) list ->
  unit ->
  id

val verdict :
  t ->
  time:float ->
  detector:string ->
  ?subject:int ->
  ?suspects:int list ->
  ?confidence:float ->
  alarm:bool ->
  ?detail:string ->
  ?evidence:id list ->
  unit ->
  id
(** Record a provenance record on the detector's track and trip the
    flight recorder: the evidence entries, the newest {!flight_window}
    entries mentioning [subject]/[suspects], and the verdict itself are
    pinned against eviction. *)

val pin_recent : t -> ?routers:int list -> unit -> int
(** Trip the flight recorder without a verdict (assertion-failure /
    crash dumps): pins the newest {!flight_window} entries — restricted
    to the given routers if provided — and returns how many entries are
    now pinned in total. *)

(* --- reading --- *)

val entries : t -> entry list
(** The retained ring merged with the pinned flight entries,
    deduplicated by id and sorted by (time, id). *)

val find : t -> id -> entry option
(** Look up a retained or pinned entry. *)

val recorded : t -> int
(** Entries ever recorded (including evicted ones). *)

val dropped : t -> int
(** Entries evicted from the ring (pinned copies survive in the flight
    buffer regardless). *)

val pinned : t -> int
(** Entries currently held by the flight recorder. *)
