(* Fixed-capacity downsampling time series.

   A flat pair of parallel arrays bucketed by sim time: bucket i covers
   [i*res, (i+1)*res).  When a sample lands past the last bucket the
   series coarsens — adjacent buckets fold pairwise and the resolution
   doubles — so memory stays bounded at [capacity] buckets forever while
   the horizon grows.  Coarsening is aligned at t = 0 and always by
   powers of two, which is what makes [merge] exact: two series with the
   same base resolution can be folded to a common (the coarser) level
   with pure integer index shifts, then added bucket-wise.

   Like Hist, the per-bucket value sums are fixed point (Hist.quantum
   units) so merging per-shard collectors is commutative AND associative
   — integer addition all the way down — and therefore yields
   byte-identical results for every shard count.  [record] is O(1)
   amortized (a coarsening pass is O(capacity) but halves the used
   range) and allocation-free after [create]. *)

type t = {
  capacity : int;
  res0 : float; (* finest bucket width, sim seconds *)
  mutable level : int; (* current width = res0 * 2^level *)
  mutable res : float;
  counts : int array;
  sums_q : int array; (* fixed point, Hist.quantum units *)
  mutable used : int; (* buckets in use: indices [0, used) *)
}

let create ?(capacity = 256) ~resolution () =
  if capacity < 2 then invalid_arg "Timeseries.create: capacity < 2";
  if not (resolution > 0.0) then
    invalid_arg "Timeseries.create: resolution must be positive";
  { capacity; res0 = resolution; level = 0; res = resolution;
    counts = Array.make capacity 0; sums_q = Array.make capacity 0; used = 0 }

let copy t =
  { t with counts = Array.copy t.counts; sums_q = Array.copy t.sums_q }

let clear t =
  Array.fill t.counts 0 t.capacity 0;
  Array.fill t.sums_q 0 t.capacity 0;
  t.level <- 0;
  t.res <- t.res0;
  t.used <- 0

let capacity t = t.capacity
let base_resolution t = t.res0
let resolution t = t.res
let level t = t.level
let used t = t.used
let bucket_count t i = t.counts.(i)
let bucket_sum t i = float_of_int t.sums_q.(i) *. Hist.quantum
let bucket_start t i = float_of_int i *. t.res

let total_count t =
  let n = ref 0 in
  for i = 0 to t.used - 1 do
    n := !n + t.counts.(i)
  done;
  !n

let total_sum t =
  let s = ref 0 in
  for i = 0 to t.used - 1 do
    s := !s + t.sums_q.(i)
  done;
  float_of_int !s *. Hist.quantum

(* Fold adjacent pairs: bucket i <- buckets 2i + 2i+1, double res. *)
let coarsen t =
  let half = (t.used + 1) / 2 in
  for i = 0 to half - 1 do
    let a = 2 * i and b = (2 * i) + 1 in
    t.counts.(i) <- (t.counts.(a) + if b < t.used then t.counts.(b) else 0);
    t.sums_q.(i) <- (t.sums_q.(a) + if b < t.used then t.sums_q.(b) else 0)
  done;
  Array.fill t.counts half (t.capacity - half) 0;
  Array.fill t.sums_q half (t.capacity - half) 0;
  t.used <- half;
  t.level <- t.level + 1;
  t.res <- t.res *. 2.0

let record t ~time v =
  let idx = int_of_float (time /. t.res) in
  let idx = if idx < 0 then 0 else idx in
  let idx = ref idx in
  while !idx >= t.capacity do
    coarsen t;
    let i = int_of_float (time /. t.res) in
    idx := if i < 0 then 0 else i
  done;
  let i = !idx in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums_q.(i) <- t.sums_q.(i) + Hist.quantize v;
  if i >= t.used then t.used <- i + 1

let same_shape a b = a.capacity = b.capacity && a.res0 = b.res0

let merge_into ~into src =
  if not (same_shape into src) then
    invalid_arg "Timeseries.merge_into: incompatible capacity or resolution";
  while into.level < src.level do
    coarsen into
  done;
  let shift = into.level - src.level in
  for i = 0 to src.used - 1 do
    let j = i lsr shift in
    into.counts.(j) <- into.counts.(j) + src.counts.(i);
    into.sums_q.(j) <- into.sums_q.(j) + src.sums_q.(i);
    if j >= into.used then into.used <- j + 1
  done

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

(* Rebuild from exported raw state (Export round-trips through this).
   Exported per-bucket sums are exact multiples of Hist.quantum, so the
   fixed-point representation is recovered losslessly. *)
let of_raw ~capacity ~resolution ~level ~counts ~sums =
  if capacity < 2 then invalid_arg "Timeseries.of_raw: capacity < 2";
  if not (resolution > 0.0) then
    invalid_arg "Timeseries.of_raw: resolution must be positive";
  if level < 0 then invalid_arg "Timeseries.of_raw: negative level";
  let used = Array.length counts in
  if Array.length sums <> used then
    invalid_arg "Timeseries.of_raw: counts/sums length mismatch";
  if used > capacity then invalid_arg "Timeseries.of_raw: more buckets than capacity";
  let t =
    { capacity; res0 = resolution; level;
      res = resolution *. Float.pow 2.0 (float_of_int level);
      counts = Array.make capacity 0; sums_q = Array.make capacity 0; used }
  in
  Array.blit counts 0 t.counts 0 used;
  Array.iteri (fun i s -> t.sums_q.(i) <- Hist.quantize s) sums;
  t
