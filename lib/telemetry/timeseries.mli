(** Fixed-capacity downsampling time series.

    Sim-time-bucketed counters and gauges: bucket [i] covers
    [[i*res, (i+1)*res)].  When a sample lands past the last bucket, the
    series coarsens — adjacent buckets fold pairwise, the resolution
    doubles — so memory stays bounded at [capacity] buckets while the
    horizon grows without limit.  Coarsening is aligned at [t = 0] and
    by powers of two only, and per-bucket value sums are fixed point
    ({!Hist.quantum} units), so {!merge} is exact integer arithmetic:
    commutative, associative, and independent of how per-shard
    collectors are grouped — the property the sharded engine's
    epoch-barrier aggregation relies on for byte-identical output.

    {!record} is O(1) amortized and allocation-free after {!create}. *)

type t

val create : ?capacity:int -> resolution:float -> unit -> t
(** [capacity] (default 256, minimum 2) buckets of [resolution] sim
    seconds each; the series covers [capacity * resolution] seconds
    before its first coarsening.  Raises [Invalid_argument] on a
    capacity below 2 or a non-positive resolution. *)

val copy : t -> t
val clear : t -> unit

val record : t -> time:float -> float -> unit
(** Add a sample with value [v] at sim time [time] (negative times clamp
    to bucket 0).  For counter-style series record [1.0] per event; for
    gauge-style series record the observed value — per-bucket count and
    sum support both rate and mean readouts. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into], coarsening either side to the coarser of the
    two resolutions first.  Raises [Invalid_argument] when capacity or
    base resolution differ. *)

val merge : t -> t -> t
(** Pure merge into a fresh series; commutative and associative. *)

val capacity : t -> int

val base_resolution : t -> float
(** The finest (creation-time) bucket width. *)

val resolution : t -> float
(** The current bucket width: [base_resolution * 2^level]. *)

val level : t -> int
(** How many times the series has coarsened. *)

val used : t -> int
(** Number of leading buckets in use; valid indices are [0..used-1]. *)

val bucket_count : t -> int -> int
val bucket_sum : t -> int -> float

val bucket_start : t -> int -> float
(** Inclusive sim-time lower edge of bucket [i]. *)

val total_count : t -> int
val total_sum : t -> float

val of_raw :
  capacity:int ->
  resolution:float ->
  level:int ->
  counts:int array ->
  sums:float array ->
  t
(** Rebuild a series from exported state ({!Export.timeseries_of_json}):
    [resolution] is the {e base} resolution, [counts]/[sums] the leading
    used buckets at the given [level].  Exported sums are exact multiples
    of {!Hist.quantum} and re-quantize losslessly.  Raises
    [Invalid_argument] on shape errors. *)
