open Export

(* Sim seconds -> trace microseconds. *)
let us t = t *. 1e6

let meta ~pid ~tid ~field name =
  Assoc
    [ ("name", String field);
      ("ph", String "M");
      ("ts", Float 0.0);
      ("pid", Int pid);
      ("tid", Int tid);
      ("args", Assoc [ ("name", String name) ]) ]

let event_json (e : Span.entry) =
  let ph, extra =
    match e.Span.kind with
    | Span.Complete { duration } -> ("X", [ ("dur", Float (us duration)) ])
    | Span.Instant -> ("i", [ ("s", String "t") ])
    | Span.Verdict _ -> ("i", [ ("s", String "g") ])
  in
  let provenance =
    match e.Span.kind with
    | Span.Verdict { detector; subject; suspects; confidence; alarm; detail; evidence }
      ->
        [ ("detector", String detector) ]
        @ (match subject with Some s -> [ ("subject", Int s) ] | None -> [])
        @ [ ("suspects", List (List.map (fun s -> Int s) suspects)) ]
        @ (match confidence with Some c -> [ ("confidence", Float c) ] | None -> [])
        @ [ ("alarm", Bool alarm) ]
        @ (if detail = "" then [] else [ ("detail", String detail) ])
        @ [ ("evidence", List (List.map (fun i -> Int i) evidence)) ]
    | _ -> []
  in
  let args =
    let routers = Span.entry_routers e in
    (("id", Int e.Span.id)
     :: (if e.Span.trace <> 0 then [ ("trace", Int e.Span.trace) ] else []))
    @ (if routers = [] then []
       else [ ("routers", List (List.map (fun r -> Int r) routers)) ])
    @ Span.entry_args e @ provenance
  in
  Assoc
    ([ ("name", String e.Span.name);
       ("cat", String (if e.Span.cat = "" then "misc" else e.Span.cat));
       ("ph", String ph);
       ("ts", Float (us e.Span.time));
       ("pid", Int e.Span.pid);
       ("tid", Int e.Span.tid) ]
    @ extra
    @ [ ("args", Assoc args) ])

let document t =
  let metas =
    List.map
      (fun (pid, name) -> meta ~pid ~tid:0 ~field:"process_name" name)
      (List.sort compare (Span.process_names t))
    @ List.map
        (fun ((pid, tid), name) -> meta ~pid ~tid ~field:"thread_name" name)
        (List.sort compare (Span.thread_names t))
  in
  Assoc
    [ ("displayTimeUnit", String "ms");
      ( "otherData",
        Assoc
          [ ("schema", String "mrdetect-trace-v1");
            ("sample_rate", Float (Span.sample_rate t));
            ("traces_started", Int (Span.traces_started t));
            ("traces_sampled", Int (Span.traces_sampled t));
            ("entries_recorded", Int (Span.recorded t));
            ("entries_evicted", Int (Span.dropped t));
            ("entries_pinned", Int (Span.pinned t)) ] );
      ("traceEvents", List (metas @ List.map event_json (Span.entries t))) ]

let write path t = Export.write_file path (document t)

(* --- reading a trace file back --- *)

let events doc =
  match Option.bind (member "traceEvents" doc) to_list_opt with
  | Some evs -> Ok evs
  | None -> Error "no traceEvents array"

let str_field k ev = Option.bind (member k ev) to_string_opt
let int_field k ev = Option.bind (member k ev) to_int
let float_field k ev = Option.bind (member k ev) to_float
let arg k ev = Option.bind (member "args" ev) (member k)

let event_id ev = Option.bind (arg "id" ev) to_int

let evidence_ids ev =
  match Option.bind (arg "evidence" ev) to_list_opt with
  | Some ids -> Some (List.filter_map to_int ids)
  | None -> None

let validate doc =
  let ( let* ) = Result.bind in
  let* evs = events doc in
  let ids = Hashtbl.create 256 in
  List.iter
    (fun ev -> match event_id ev with Some i -> Hashtbl.replace ids i () | None -> ())
    evs;
  let rec check i last_ts = function
    | [] -> Ok ()
    | ev :: rest -> (
        let fail msg = Error (Printf.sprintf "event %d: %s" i msg) in
        match (str_field "ph" ev, float_field "ts" ev) with
        | None, _ -> fail "missing ph"
        | _, None -> fail "missing ts"
        | Some ph, Some ts ->
            if int_field "pid" ev = None then fail "missing pid"
            else if int_field "tid" ev = None then fail "missing tid"
            else if not (List.mem ph [ "M"; "X"; "i" ]) then
              fail ("unexpected phase " ^ ph)
            else if ts < last_ts then
              fail (Printf.sprintf "ts %g goes backwards (previous %g)" ts last_ts)
            else if
              ph = "X"
              && match float_field "dur" ev with Some d -> d < 0.0 | None -> true
            then fail "X event without a non-negative dur"
            else begin
              match evidence_ids ev with
              | Some refs -> (
                  match List.find_opt (fun r -> not (Hashtbl.mem ids r)) refs with
                  | Some missing ->
                      fail
                        (Printf.sprintf "verdict references unknown entry id %d"
                           missing)
                  | None -> check (i + 1) ts rest)
              | None -> check (i + 1) ts rest
            end)
  in
  check 0 neg_infinity evs

type verdict = {
  time : float;
  detector : string;
  subject : int option;
  suspects : int list;
  confidence : float option;
  alarm : bool;
  detail : string;
  evidence : int list;
}

let verdict_of_event ev =
  match (str_field "cat" ev, Option.bind (arg "detector" ev) to_string_opt) with
  | Some "verdict", Some detector ->
      Some
        { time = Option.value ~default:0.0 (float_field "ts" ev) /. 1e6;
          detector;
          subject = Option.bind (arg "subject" ev) to_int;
          suspects =
            (match Option.bind (arg "suspects" ev) to_list_opt with
            | Some xs -> List.filter_map to_int xs
            | None -> []);
          confidence = Option.bind (arg "confidence" ev) to_float;
          alarm = (match arg "alarm" ev with Some (Bool b) -> b | _ -> false);
          detail =
            Option.value ~default:"" (Option.bind (arg "detail" ev) to_string_opt);
          evidence = Option.value ~default:[] (evidence_ids ev) }
  | _ -> None

let verdicts doc =
  match events doc with
  | Error _ -> []
  | Ok evs -> List.filter_map verdict_of_event evs

(* --- the evidence-chain renderer behind `mrdetect trace explain` --- *)

let describe_event ev =
  let name = Option.value ~default:"?" (str_field "name" ev) in
  let cat = Option.value ~default:"" (str_field "cat" ev) in
  let ts = Option.value ~default:0.0 (float_field "ts" ev) /. 1e6 in
  let shape =
    match str_field "ph" ev with
    | Some "X" ->
        Printf.sprintf "span %.4f-%.4f s"
          ts
          (ts +. Option.value ~default:0.0 (float_field "dur" ev) /. 1e6)
    | _ -> Printf.sprintf "at %.4f s" ts
  in
  let interesting =
    match Option.bind (member "args" ev) (function Assoc kvs -> Some kvs | _ -> None)
    with
    | None -> []
    | Some kvs ->
        List.filter
          (fun (k, _) ->
            not (List.mem k [ "id"; "evidence"; "routers"; "suspects" ]))
          kvs
  in
  let args =
    match interesting with
    | [] -> ""
    | kvs ->
        "  {"
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (to_string v)) kvs)
        ^ "}"
  in
  Printf.sprintf "%-18s %-9s %s%s" name cat shape args

let explain doc =
  match validate doc with
  | Error e -> Error e
  | Ok () -> (
      match events doc with
      | Error e -> Error e
      | Ok evs ->
          let by_id = Hashtbl.create 256 in
          List.iter
            (fun ev ->
              match event_id ev with
              | Some i -> Hashtbl.replace by_id i ev
              | None -> ())
            evs;
          let buf = Buffer.create 1024 in
          let n = ref 0 in
          List.iter
            (fun ev ->
              match verdict_of_event ev with
              | None -> ()
              | Some v ->
                  incr n;
                  Buffer.add_string buf
                    (Printf.sprintf "%.4f s  %s %s%s%s%s\n" v.time v.detector
                       (if v.alarm then "ALARM" else "verdict")
                       (match v.subject with
                       | Some s -> Printf.sprintf "  subject=r%d" s
                       | None -> "")
                       (match v.suspects with
                       | [] -> ""
                       | s ->
                           "  suspects="
                           ^ String.concat "," (List.map string_of_int s))
                       (match v.confidence with
                       | Some c -> Printf.sprintf "  confidence=%.4f" c
                       | None -> ""));
                  if v.detail <> "" then
                    Buffer.add_string buf (Printf.sprintf "  detail: %s\n" v.detail);
                  if v.evidence = [] then
                    Buffer.add_string buf "  (no evidence recorded)\n"
                  else
                    List.iter
                      (fun id ->
                        match Hashtbl.find_opt by_id id with
                        | Some e ->
                            Buffer.add_string buf
                              (Printf.sprintf "  [#%d] %s\n" id (describe_event e))
                        | None ->
                            (* validate guarantees this cannot happen. *)
                            Buffer.add_string buf
                              (Printf.sprintf "  [#%d] <missing>\n" id))
                      v.evidence)
            evs;
          if !n = 0 then Buffer.add_string buf "no verdicts recorded in this trace\n";
          Ok (Buffer.contents buf))
