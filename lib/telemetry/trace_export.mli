(** Chrome trace-event JSON export for {!Span} collectors.

    Produces the Trace Event Format that Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and chrome://tracing
    load: an object with a [traceEvents] array of metadata ("M"),
    complete ("X") and instant ("i") events, timestamps in microseconds,
    one row per (pid, tid) track.  Every event carries its collector
    entry id in [args.id]; verdict events additionally carry the
    provenance fields ([detector], [suspects], [alarm], [evidence] — the
    entry ids of the justifying spans/instants), which is what
    [mrdetect trace explain] walks.

    Everything here is dependency-free JSON via {!Export}, and the
    emitted files parse back with {!Export.of_string} (the golden
    @trace test round-trips one). *)

val document : Span.t -> Export.json
(** The full trace document: [displayTimeUnit], an [otherData] block
    (schema [mrdetect-trace-v1], sampling statistics, drop counts) and
    [traceEvents] sorted by timestamp with track-naming metadata
    first. *)

val write : string -> Span.t -> unit
(** Serialize {!document} to a file, newline-terminated. *)

val validate : Export.json -> (unit, string) result
(** Schema check for a parsed trace file: [traceEvents] exists; every
    event has [ph] (one of M/X/i), [ts], [pid] and [tid]; "X" events
    have a non-negative [dur]; timestamps are monotonically
    non-decreasing across the array; and every verdict's [evidence] ids
    refer to events present in the file. *)

type verdict = {
  time : float;  (** seconds *)
  detector : string;
  subject : int option;
  suspects : int list;
  confidence : float option;
  alarm : bool;
  detail : string;
  evidence : int list;
}

val verdicts : Export.json -> verdict list
(** The provenance records of a parsed trace file, in file order. *)

val explain : Export.json -> (string, string) result
(** Pretty-print every verdict's evidence chain ("why was r blamed?"):
    for each provenance record, the verdict line followed by the
    resolved evidence events (round spans, suspicious losses, summary
    mismatches) with their timestamps, tracks and arguments.  Runs
    {!validate} first and reports its error if the file is
    malformed. *)
