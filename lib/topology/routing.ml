type t = {
  graph : Graph.t;
  (* dist_to.(d).(v) = least cost from v to d. *)
  dist_to : int array array;
  (* nh.(d).(v) = next hop from v towards d, -1 when none; precomputed
     so the per-packet forwarding lookup is two array reads with no
     list walk and no option allocation. *)
  nh : int array array;
}

let compute graph =
  let n = Graph.size graph in
  let rev = Dijkstra.transpose graph in
  let dist_to = Array.init n (fun d -> Dijkstra.distances rev ~src:d) in
  let nh =
    Array.init n (fun dst ->
        let dist = dist_to.(dst) in
        Array.init n (fun v ->
            if v = dst || dist.(v) = Dijkstra.unreachable then -1
            else
              (* Neighbors are in ascending order, so the first optimal
                 one is the deterministic choice shared by all routers. *)
              match
                List.find_opt
                  (fun w ->
                    dist.(w) <> Dijkstra.unreachable
                    && (Graph.link_exn graph v w).Graph.cost + dist.(w)
                       = dist.(v))
                  (Graph.out_neighbors graph v)
              with
              | Some w -> w
              | None -> -1))
  in
  { graph; dist_to; nh }

let graph t = t.graph

let next_hop_id t v ~dst =
  if v < 0
     || v >= Array.length t.nh
     || dst < 0
     || dst >= Array.length t.nh
  then invalid_arg "Routing.next_hop: bad node";
  t.nh.(dst).(v)

let next_hop t v ~dst =
  let w = next_hop_id t v ~dst in
  if w < 0 then None else Some w

let cost t src dst =
  let d = t.dist_to.(dst).(src) in
  if d = Dijkstra.unreachable then None else Some d

let path t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let rec follow v acc =
      if v = dst then Some (List.rev (v :: acc))
      else begin
        match next_hop t v ~dst with
        | None -> None
        | Some w -> follow w (v :: acc)
      end
    in
    follow src []
  end

let path_delay t chain =
  let rec loop = function
    | a :: (b :: _ as rest) -> (Graph.link_exn t.graph a b).Graph.delay +. loop rest
    | [ _ ] | [] -> 0.0
  in
  loop chain

let all_routed_paths t =
  let n = Graph.size t.graph in
  let acc = ref [] in
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then begin
        match path t ~src ~dst with
        | Some p -> acc := p :: !acc
        | None -> ()
      end
    done
  done;
  !acc
