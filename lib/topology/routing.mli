(** Link-state routing tables (§4.1, §2.1.6).

    Every router derives its forwarding table from the same global view
    via deterministic Dijkstra, so hop-by-hop forwarding is loop-free and
    the path any packet will follow is predictable by any router — the
    property the traffic validation protocols rely on. *)

type t

val compute : Graph.t -> t
(** Build the all-destinations routing state for a topology.  O(n) runs
    of Dijkstra. *)

val graph : t -> Graph.t
(** The topology the tables were computed from. *)

val next_hop : t -> Graph.node -> dst:Graph.node -> Graph.node option
(** The unique deterministic next hop from a router toward a
    destination; [None] if unreachable or already there. *)

val next_hop_id : t -> Graph.node -> dst:Graph.node -> Graph.node
(** Like {!next_hop} but returning [-1] for "no route": a precomputed
    table lookup that allocates nothing — the forwarding plane's
    per-packet path. *)

val cost : t -> Graph.node -> Graph.node -> int option
(** Least path cost between two routers. *)

val path : t -> src:Graph.node -> dst:Graph.node -> Graph.node list option
(** The hop-by-hop forwarding chain [src; ...; dst] ([Some [src]] when
    [src = dst]); [None] if unreachable. *)

val path_delay : t -> Graph.node list -> float
(** Sum of propagation delays along a chain of adjacent routers.  Raises
    [Not_found] if some consecutive pair is not linked. *)

val all_routed_paths : t -> Graph.node list list
(** The forwarding chain for every ordered pair of distinct, mutually
    reachable routers. *)
