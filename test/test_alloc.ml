(* Allocation-regression suite (@alloc).

   The zero-allocation work pins the simulator's steady-state cost: the
   ring8 reference scenario recorded 62.97 minor words per event at the
   seed; the flat event heap, ring queues and packet pooling hold it
   around 11.  The ceilings below sit between the two with generous
   slack for environment differences — they catch a reintroduced
   per-event box, not run-to-run noise ([Gc.minor_words] deltas are a
   deterministic count of allocation, not a timing).

   The suite also proves the pool actually recycles on the reference
   scenario, that pooled and unpooled runs execute the identical event
   set, and that poison mode catches an injected use-after-free and a
   double release at the pool boundary. *)

open Netsim

(* Words allocated per event over the tail of a ring8 reference run:
   the first simulated second is warm-up (pools filling, rings and
   journals growing), the remaining four are the steady state the
   budget applies to. *)
let ring8_run ~pooling =
  let horizon = 5.0 in
  let g = Topology.Generate.ring ~n:8 in
  let net = Net.create ~seed:1 ~jitter_bound:100e-6 ~pooling g in
  Net.use_routing net (Topology.Routing.compute g);
  List.iter
    (fun (s, d) ->
      ignore
        (Flow.cbr net ~src:s ~dst:d ~rate_pps:200.0 ~size:500 ~start:0.0
           ~stop:horizon))
    [ (0, 4); (4, 0); (1, 5); (5, 1); (2, 6); (6, 2) ];
  ignore (Tcp.connect net ~src:0 ~dst:3 ());
  Net.run ~until:1.0 net;
  Gc.full_major ();
  let m0 = Gc.minor_words () in
  let e0 = Net.events_processed net in
  Net.run ~until:horizon net;
  let m1 = Gc.minor_words () in
  let events = Net.events_processed net - e0 in
  let words_per_event = (m1 -. m0) /. float_of_int (max 1 events) in
  (words_per_event, Net.events_processed net, Net.pool_stats net)

let seed_words_per_event = 62.97

let test_steady_state_budget () =
  let unpooled, events_unpooled, _ = ring8_run ~pooling:false in
  let pooled, events_pooled, stats = ring8_run ~pooling:true in
  (* Identical scenario, identical event set: pooling must be invisible
     to the simulation itself. *)
  Alcotest.(check int)
    "pooled run executes the identical event count" events_unpooled
    events_pooled;
  Alcotest.(check bool)
    (Printf.sprintf "unpooled %.2f w/ev under 24.0 ceiling" unpooled)
    true (unpooled < 24.0);
  Alcotest.(check bool)
    (Printf.sprintf "pooled %.2f w/ev under 20.0 ceiling" pooled)
    true (pooled < 20.0);
  Alcotest.(check bool)
    (Printf.sprintf "pooled %.2f w/ev at least halves the seed's %.2f" pooled
       seed_words_per_event)
    true
    (pooled < seed_words_per_event /. 2.0);
  (* The budget must be met by recycling, not by a quiet pool. *)
  Alcotest.(check bool)
    (Printf.sprintf "pool recycled %d of %d acquisitions" stats.Pool.recycled
       (stats.Pool.recycled + stats.Pool.fresh))
    true
    (stats.Pool.recycled > 10 * stats.Pool.fresh)

let test_pool_inert_when_observed () =
  (* A probe retains packets in its journal, so recycling must switch
     itself off rather than corrupt the observations. *)
  let g = Topology.Generate.ring ~n:4 in
  let net = Net.create ~seed:1 ~pooling:true g in
  Net.set_probe net (Some (Probe.create ()));
  Net.use_routing net (Topology.Routing.compute g);
  Alcotest.(check bool) "pooling suppressed under a probe" false
    (Net.pooling_active net);
  let net2 = Net.create ~seed:1 ~pooling:true g in
  Net.use_routing net2 (Topology.Routing.compute g);
  Alcotest.(check bool) "pooling live unobserved" true (Net.pooling_active net2)

(* Poison mode: a released packet is stamped loudly wrong, so a stale
   holder (the injected use-after-free) reads the sentinel instead of
   plausible data, and a second release trips at the pool boundary. *)
let test_poison_catches_use_after_free () =
  let pool = Pool.create ~poison:true () in
  let p =
    Pool.acquire pool ~now:0.0 ~uid:7 ~src:0 ~dst:1 ~flow:3 ~size:500
      Packet.Udp
  in
  let stale = p in
  (* The injected bug: [stale] outlives the packet's network lifetime. *)
  Pool.release pool p;
  Alcotest.(check bool) "stale reference reads poison" true
    (Pool.is_poisoned stale);
  Alcotest.(check int) "poisoned size is zero" 0 stale.Packet.size;
  Alcotest.check_raises "double release detected"
    (Failure "Pool.release: double release (packet already in the pool)")
    (fun () -> Pool.release pool p);
  (* Reacquiring heals the poison: the recycled record is fresh. *)
  let q =
    Pool.acquire pool ~now:1.0 ~uid:8 ~src:1 ~dst:0 ~flow:3 ~size:200
      Packet.Udp
  in
  Alcotest.(check bool) "recycled packet is clean" false (Pool.is_poisoned q);
  Alcotest.(check bool) "recycled the same record" true (q == stale);
  let s = Pool.stats pool in
  Alcotest.(check int) "one fresh, one recycled" 1 s.Pool.fresh;
  Alcotest.(check int) "recycled count" 1 s.Pool.recycled

let test_pool_grows_and_counts () =
  let pool = Pool.create () in
  let mk uid =
    Pool.acquire pool ~now:0.0 ~uid ~src:0 ~dst:1 ~flow:1 ~size:100 Packet.Udp
  in
  let batch = List.init 200 mk in
  List.iter (Pool.release pool) batch;
  let s = Pool.stats pool in
  Alcotest.(check int) "all fresh on a dry pool" 200 s.Pool.fresh;
  Alcotest.(check int) "all returned" 200 s.Pool.released;
  Alcotest.(check int) "all available" 200 s.Pool.available;
  let again = List.init 200 (fun i -> mk (1000 + i)) in
  let s2 = Pool.stats pool in
  Alcotest.(check int) "all served from the freelist" 200 s2.Pool.recycled;
  Alcotest.(check int) "pool drained" 0 s2.Pool.available;
  ignore again

(* Span-record recycling: once the trace ring has wrapped, each hop
   span mutates the evicted record in place instead of allocating a
   fresh record plus a Complete block.  The residual per-hop cost is
   the boxed float store into the mixed record's [time] field plus
   [fresh_id] bookkeeping — well under the ~24 words an unrecycled hop
   entry costs.  [Gc.minor_words] deltas are deterministic counts. *)
let test_span_recycling () =
  let capacity = 1024 in
  let hop sp i =
    ignore
      (Telemetry.Span.hop_span sp ~trace:1 ~name:"queue"
         ~pid:Telemetry.Span.network_pid ~tid:0 ~start:(float_of_int i *. 1e-6)
         ~finish:((float_of_int i +. 0.5) *. 1e-6)
         ~router:(i mod 8)
         ~next:((i + 1) mod 8)
         ~pkt:i)
  in
  let n = 10_000 in
  let words_per_hop ~wrapped =
    (* When [wrapped], fill past capacity first so every measured hop
       recycles; otherwise size the ring so none does. *)
    let cap = if wrapped then capacity else capacity + (3 * n) in
    let sp = Telemetry.Span.create ~capacity:cap () in
    for i = 0 to (2 * capacity) - 1 do
      hop sp i
    done;
    Gc.full_major ();
    let m0 = Gc.minor_words () in
    for i = 0 to n - 1 do
      hop sp (2 * capacity + i)
    done;
    (Gc.minor_words () -. m0) /. float_of_int n
  in
  let fresh = words_per_hop ~wrapped:false in
  let recycled = words_per_hop ~wrapped:true in
  (* The 14-word entry record plus its Complete block no longer
     allocate (22 -> 8 w/hop measured); what remains is boxed-float
     traffic at the call boundary, identical in both paths. *)
  Alcotest.(check bool)
    (Printf.sprintf "recycled %.2f w/hop saves >= 12 words vs fresh %.2f"
       recycled fresh)
    true
    (recycled <= fresh -. 12.0);
  Alcotest.(check bool)
    (Printf.sprintf "recycled residual %.2f w/hop under 10.0" recycled)
    true (recycled < 10.0)

let () =
  Alcotest.run "alloc"
    [ ( "budget",
        [ Alcotest.test_case "ring8 steady state under ceiling" `Quick
            test_steady_state_budget;
          Alcotest.test_case "pooling inert when observed" `Quick
            test_pool_inert_when_observed;
          Alcotest.test_case "span recycling after ring wrap" `Quick
            test_span_recycling ] );
      ( "poison",
        [ Alcotest.test_case "use-after-free and double release" `Quick
            test_poison_catches_use_after_free;
          Alcotest.test_case "freelist growth and counters" `Quick
            test_pool_grows_and_counts ] ) ]
