(* Byzantine control-plane adversary suite: Core.Byz units (role
   validation, claim determinism, origin-MAC screening, equivocation
   digests) and the golden α-accuracy property — under protocol-faulty
   chaos, hardened fatih/chi/pi2 never convict an honest router, and a
   byzantine trial is byte-identical across shard counts. *)

module Byz = Core.Byz
module Summary = Core.Summary
module Ctrl = Core.Ctrl
module Chaos = Faults.Chaos
module Injector = Faults.Injector
module Oracle = Faults.Oracle
module Net = Netsim.Net
module Probe = Netsim.Probe
module Flow = Netsim.Flow
module Rob = Experiments.Fig_robustness

let mk ?hardened roles = Byz.create ?hardened ~seed:7 ~n:8 ~roles ()

let summary_of fps =
  let s = Summary.create Summary.Content in
  List.iteri
    (fun i fp -> Summary.observe s ~fp ~size:100 ~time:(0.1 *. float_of_int i))
    fps;
  s

(* --- role validation ------------------------------------------------- *)

let test_create_validation () =
  let rejected name roles =
    match mk roles with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" name
  in
  rejected "negative router" [ (-1, Byz.Equivocator) ];
  rejected "router out of range" [ (8, Byz.Equivocator) ];
  rejected "victim out of range" [ (1, Byz.Framer { victim = 9; extras = 3 }) ];
  rejected "self-framing" [ (1, Byz.Framer { victim = 1; extras = 3 }) ];
  rejected "zero extras" [ (1, Byz.Framer { victim = 2; extras = 0 }) ];
  rejected "margin at 1" [ (1, Byz.Staller { margin = 1.0 }) ];
  rejected "negative margin" [ (1, Byz.Staller { margin = -0.1 }) ];
  rejected "negative mute start" [ (1, Byz.Mute { from = -1.0 }) ];
  let t =
    mk [ (5, Byz.Framer { victim = 4; extras = 3 }); (7, Byz.Equivocator);
         (2, Byz.Mute { from = 10.0 }); (6, Byz.Staller { margin = 0.8 }) ]
  in
  Alcotest.(check (list int)) "routers ascending" [ 2; 5; 6; 7 ] (Byz.routers t);
  Alcotest.(check bool) "hardened by default" true (Byz.hardened t);
  Alcotest.(check bool) "role lookup" true (Byz.role t 7 = Some Byz.Equivocator);
  Alcotest.(check bool) "honest router has no role" true (Byz.role t 0 = None);
  Alcotest.(check bool) "mute quiet before from" false
    (Byz.mute_active t ~router:2 ~now:5.0);
  Alcotest.(check bool) "mute active after from" true
    (Byz.mute_active t ~router:2 ~now:15.0);
  Alcotest.(check bool) "stall margin exposed" true
    (Byz.stall_margin t ~router:6 = Some 0.8);
  Alcotest.(check bool) "honest router never stalls" true
    (Byz.stall_margin t ~router:0 = None)

(* --- claims ----------------------------------------------------------- *)

let fps8 = List.init 8 (fun i -> Int64.of_int (1000 + (i * 37)))

let test_claim_honest_and_deterministic () =
  let t = mk [ (5, Byz.Framer { victim = 4; extras = 3 }) ] in
  let truth = summary_of fps8 in
  (* An honest claimant — even inside a byzantine plan — reports the
     truth unchanged with no extras. *)
  let s, extras =
    Byz.summary_claim t ~claimant:0 ~peer:1 ~segment:[ 0; 1; 2 ] ~round:3 truth
  in
  Alcotest.(check bool) "honest claim is the truth" true (s == truth);
  Alcotest.(check int) "honest claim has no extras" 0 (List.length extras);
  (* Claims are a pure function of (seed, claimant, peer, round): two
     same-seed instances fabricate identical entries. *)
  let t' = mk [ (5, Byz.Framer { victim = 4; extras = 3 }) ] in
  let claim u =
    let s, extras =
      Byz.summary_claim u ~claimant:5 ~peer:4 ~segment:[ 5; 4; 3 ] ~round:9
        (summary_of fps8)
    in
    (Byz.digest s, List.map (fun e -> (e.Byz.fp, e.Byz.origin)) extras)
  in
  Alcotest.(check bool) "same seed, same claim" true (claim t = claim t')

let test_framer_arms () =
  let t = mk [ (5, Byz.Framer { victim = 4; extras = 3 }) ] in
  let truth = summary_of fps8 in
  (* Entry terminal reporting traffic *into* the victim: the truth plus
     fabricated extras whose origin tags the framer cannot sign. *)
  let s, extras =
    Byz.summary_claim t ~claimant:5 ~peer:4 ~segment:[ 5; 4; 3 ] ~round:1 truth
  in
  Alcotest.(check bool) "inflation keeps the truth intact" true (s == truth);
  Alcotest.(check int) "three fabricated entries" 3 (List.length extras);
  List.iter
    (fun e ->
      Alcotest.(check bool) "fabricated fp is novel" false
        (Summary.mem truth e.Byz.fp))
    extras;
  (* The framer as exit terminal reporting traffic *out of* the victim:
     real fingerprints pruned so the victim appears to have swallowed
     them. *)
  let s', extras' =
    Byz.summary_claim t ~claimant:5 ~peer:4 ~segment:[ 3; 4; 5 ] ~round:1 truth
  in
  Alcotest.(check int) "no extras on the under-report arm" 0 (List.length extras');
  Alcotest.(check int) "three fingerprints pruned" (List.length fps8 - 3)
    (Summary.packets s');
  Alcotest.(check int) "the truth is never mutated" (List.length fps8)
    (Summary.packets truth);
  (* A segment the victim is not interior of draws no attack at all. *)
  let s'', extras'' =
    Byz.summary_claim t ~claimant:5 ~peer:6 ~segment:[ 5; 6; 7 ] ~round:1 truth
  in
  Alcotest.(check bool) "off-victim segments get the truth" true (s'' == truth);
  Alcotest.(check int) "and no extras" 0 (List.length extras'');
  Alcotest.(check int) "both on-victim arms counted" 2
    (Byz.stats t).Byz.framing_attempts

let test_equivocator_digests () =
  let t = mk [ (7, Byz.Equivocator) ] in
  let truth = summary_of fps8 in
  let claim peer =
    fst (Byz.summary_claim t ~claimant:7 ~peer ~segment:[ 0; 7; 6 ] ~round:4 truth)
  in
  let to_a = claim 0 and to_b = claim 6 in
  Alcotest.(check bool) "digests to different peers disagree" false
    (Byz.digest to_a = Byz.digest to_b);
  Alcotest.(check int) "each claim prunes exactly one" (Summary.packets truth - 1)
    (Summary.packets to_a);
  Alcotest.(check int) "truth keeps its packets" (List.length fps8)
    (Summary.packets truth);
  (* Same peer, same round: the lie itself is replay-deterministic. *)
  Alcotest.(check bool) "stable per peer" true
    (Byz.digest (claim 0) = Byz.digest to_a)

(* --- origin-MAC screening --------------------------------------------- *)

let test_screening_hardened () =
  let t = mk [ (5, Byz.Framer { victim = 4; extras = 3 }) ] in
  let probe = Probe.create () in
  let summary = summary_of fps8 in
  let genuine = Byz.sign_extra t ~origin:3 ~fp:42L in
  let forged =
    { Byz.fp = 43L; origin = 3; tag = Crypto_sim.Keyring.forge_attempt }
  in
  let rejected =
    Byz.screen t ~probe ~time:12.0 ~claimant:5 ~summary
      ~extras:[ genuine; forged ] ()
  in
  Alcotest.(check int) "one forgery rejected" 1 rejected;
  Alcotest.(check bool) "genuine extra folded in" true (Summary.mem summary 42L);
  Alcotest.(check bool) "forged extra dropped" false (Summary.mem summary 43L);
  let st = Byz.stats t in
  Alcotest.(check int) "rejection counted" 1 st.Byz.forgeries_rejected;
  Alcotest.(check int) "nothing accepted" 0 st.Byz.forgeries_accepted;
  (* The rejection is journaled as a typed fault record. *)
  let o = Oracle.of_probe ~malicious:[] probe in
  Alcotest.(check int) "forgery_rejected journaled" 1 o.Oracle.faults_injected

let test_screening_unhardened () =
  let t = mk ~hardened:false [ (5, Byz.Framer { victim = 4; extras = 3 }) ] in
  let summary = summary_of fps8 in
  let genuine = Byz.sign_extra t ~origin:3 ~fp:42L in
  let forged =
    { Byz.fp = 43L; origin = 3; tag = Crypto_sim.Keyring.forge_attempt }
  in
  let rejected =
    Byz.screen t ~claimant:5 ~summary ~extras:[ genuine; forged ] ()
  in
  Alcotest.(check int) "nothing rejected" 0 rejected;
  Alcotest.(check bool) "forged extra folded in" true (Summary.mem summary 43L);
  let st = Byz.stats t in
  Alcotest.(check int) "acceptance counted" 1 st.Byz.forgeries_accepted;
  Alcotest.(check int) "no rejections" 0 st.Byz.forgeries_rejected

(* --- the golden α-accuracy property ----------------------------------- *)

(* Hardened fatih under the scripted byzantine plan: every forgery dies
   at the origin MAC, nobody honest is convicted — and arming a real
   traffic-dropping attacker on top still yields full recall. *)
let test_golden_fatih_byz_plan () =
  List.iter
    (fun attacked ->
      let t =
        Rob.ring_trial ~seed:31 ~duration:30.0 ~schedule:Rob.byz_plan ~attacked ()
      in
      let o = t.Rob.outcome in
      Alcotest.(check bool) "the framer really fired" true
        (o.Oracle.framing_attempts > 0);
      Alcotest.(check bool) "forgeries were rejected" true
        (o.Oracle.forgeries_rejected > 0);
      Alcotest.(check int) "hardened runs accept no forgery" 0
        o.Oracle.forgeries_accepted;
      Alcotest.(check int)
        (Printf.sprintf "attacked=%b: zero framed honest" attacked)
        0 o.Oracle.framed_honest;
      Alcotest.(check int)
        (Printf.sprintf "attacked=%b: zero alpha violations" attacked)
        0 o.Oracle.alpha_violations;
      if attacked then
        Alcotest.(check (float 1e-9)) "real attacker still detected" 1.0
          o.Oracle.recall)
    [ false; true ]

(* Generated byzantine chaos: whatever roles the budget draws, a
   hardened run never violates α-accuracy. *)
let test_golden_fatih_byz_chaos () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun seed ->
      let schedule =
        Chaos.generate ~seed ~graph:g ~duration:20.0
          ~budget:Chaos.byzantine_budget ()
      in
      let t =
        Rob.ring_trial ~seed:(300 + seed) ~duration:20.0 ~schedule
          ~attacked:false ()
      in
      let o = t.Rob.outcome in
      Alcotest.(check bool)
        (Printf.sprintf "chaos seed %d drew byzantine roles" seed)
        true (o.Oracle.byzantine <> []);
      Alcotest.(check int)
        (Printf.sprintf "fatih, byz chaos seed %d: zero framed honest" seed)
        0 o.Oracle.framed_honest;
      Alcotest.(check int)
        (Printf.sprintf "fatih, byz chaos seed %d: zero alpha violations" seed)
        0 o.Oracle.alpha_violations)
    [ 1; 2; 3 ]

(* χ with the byzantine control channel (mute + stall peers riding the
   Ctrl budget): degraded rounds, never a false accusation. *)
let test_golden_chi_byz_chaos () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun seed ->
      let duration = 20.0 in
      let schedule =
        Chaos.generate ~seed ~graph:g ~duration ~budget:Chaos.byzantine_budget ()
      in
      let probe = Probe.create () in
      let net = Net.create ~seed:(400 + seed) ~jitter_bound:200e-6 g in
      Net.set_probe net (Some probe);
      let rt = Topology.Routing.compute g in
      Net.use_routing net rt;
      ignore (Injector.apply ~probe ~net schedule);
      let ctrl = Injector.ctrl schedule in
      List.iter
        (fun (s, d) ->
          ignore
            (Flow.cbr net ~src:s ~dst:d ~rate_pps:80.0 ~size:500 ~start:0.0
               ~stop:duration))
        [ (0, 4); (4, 0); (1, 5); (5, 1); (3, 7); (7, 3) ];
      let config = { Core.Chi.default_config with Core.Chi.tau = 2.0 } in
      let skew = Injector.skew_fn schedule in
      ignore
        (Core.Chi.deploy ~net ~rt ~router:2 ~next:1 ~config ~probe ~ctrl
           ~skew:(fun ~reporter -> skew reporter)
           ());
      Net.run ~until:duration net;
      let byzantine =
        match Injector.byz ~n:8 schedule with
        | Some bz -> Byz.routers bz
        | None -> []
      in
      let o = Oracle.of_probe ~malicious:[] ~byzantine probe in
      Alcotest.(check int)
        (Printf.sprintf "chi, byz chaos seed %d: zero alpha violations" seed)
        0 o.Oracle.alpha_violations;
      Alcotest.(check int)
        (Printf.sprintf "chi, byz chaos seed %d: zero framed honest" seed)
        0 o.Oracle.framed_honest)
    [ 1; 2; 3 ]

(* π/2 with claims + screening armed: consensus summaries are signed,
   so forged entries die and no honest pair is ever suspected. *)
let test_golden_pi2_byz_chaos () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun seed ->
      let duration = 20.0 in
      let schedule =
        Chaos.generate ~seed ~graph:g ~duration ~budget:Chaos.byzantine_budget ()
      in
      let probe = Probe.create () in
      let net = Net.create ~seed:(500 + seed) ~jitter_bound:200e-6 g in
      Net.set_probe net (Some probe);
      let rt = Topology.Routing.compute g in
      Net.use_routing net rt;
      ignore (Injector.apply ~probe ~net schedule);
      let ctrl = Injector.ctrl schedule in
      let byz = Injector.byz ~n:8 schedule in
      List.iter
        (fun (s, d) ->
          ignore
            (Flow.cbr net ~src:s ~dst:d ~rate_pps:80.0 ~size:500 ~start:0.0
               ~stop:duration))
        [ (0, 4); (4, 0); (1, 5); (5, 1); (3, 7); (7, 3) ];
      ignore (Core.Pi2_live.deploy ~net ~rt ~probe ~ctrl ?byz ());
      Net.run ~until:duration net;
      let byzantine =
        match byz with Some bz -> Byz.routers bz | None -> []
      in
      let o =
        Oracle.of_probe ~malicious:[] ~byzantine
          ?byz_stats:(Option.map Byz.stats byz) probe
      in
      Alcotest.(check int)
        (Printf.sprintf "pi2, byz chaos seed %d: zero alpha violations" seed)
        0 o.Oracle.alpha_violations;
      Alcotest.(check int)
        (Printf.sprintf "pi2, byz chaos seed %d: zero framed honest" seed)
        0 o.Oracle.framed_honest)
    [ 1; 2; 3 ]

(* The byzantine trial is part of the K-invariance contract: identical
   outcomes for shard counts 1, 2 and 4. *)
let test_byz_shard_identity () =
  let run shards =
    Rob.ring_trial ~seed:31 ~duration:20.0 ~schedule:Rob.byz_plan ~shards
      ~attacked:true ()
  in
  let k1 = run 1 in
  Alcotest.(check bool) "K=2 byte-identical to K=1" true (run 2 = k1);
  Alcotest.(check bool) "K=4 byte-identical to K=1" true (run 4 = k1)

let () =
  Alcotest.run "byz"
    [ ( "units",
        [ Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "honest + deterministic claims" `Quick
            test_claim_honest_and_deterministic;
          Alcotest.test_case "framer inflation and pruning" `Quick
            test_framer_arms;
          Alcotest.test_case "equivocator digests" `Quick
            test_equivocator_digests;
          Alcotest.test_case "screening rejects forgeries" `Quick
            test_screening_hardened;
          Alcotest.test_case "unhardened folds forgeries" `Quick
            test_screening_unhardened ] );
      ( "golden",
        [ Alcotest.test_case "fatih: scripted byz plan" `Slow
            test_golden_fatih_byz_plan;
          Alcotest.test_case "fatih: byzantine chaos" `Slow
            test_golden_fatih_byz_chaos;
          Alcotest.test_case "chi: byzantine chaos" `Slow
            test_golden_chi_byz_chaos;
          Alcotest.test_case "pi2: byzantine chaos" `Slow
            test_golden_pi2_byz_chaos;
          Alcotest.test_case "shard K-invariance" `Slow test_byz_shard_identity ] ) ]
