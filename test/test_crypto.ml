(* Tests for crypto_sim: FNV, SipHash-2-4 (against the reference vectors),
   the simulated keyring/signatures, and hash-range sampling. *)

open Crypto_sim

(* --- FNV --- *)

let test_fnv_known () =
  (* Standard FNV-1a 64 test vectors. *)
  Alcotest.(check int64) "empty" 0xcbf29ce484222325L (Fnv.hash_string "");
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Fnv.hash_string "a");
  Alcotest.(check int64) "foobar" 0x85944171f73967e8L (Fnv.hash_string "foobar")

let test_fnv_int64_consistent () =
  (* hash_int64 agrees with hashing the 8 little-endian bytes. *)
  let x = 0x0123456789abcdefL in
  let bytes = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set bytes i
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL)))
  done;
  Alcotest.(check int64) "bytes agree" (Fnv.hash_string (Bytes.to_string bytes))
    (Fnv.hash_int64 x)

let test_fnv_combine_chains () =
  let a = Fnv.combine Fnv.offset_basis 1L in
  let b = Fnv.combine a 2L in
  Alcotest.(check bool) "combine changes state" true (a <> b);
  Alcotest.(check int64) "first step = hash_int64" (Fnv.hash_int64 1L) a

(* --- SipHash --- *)

(* Reference vectors from the SipHash paper / reference implementation:
   key = 00 01 .. 0f, message = first n bytes of 00 01 02 ... *)
let reference_key = Siphash.key_of_ints 0x0706050403020100L 0x0f0e0d0c0b0a0908L

let reference_vectors =
  [ (0, 0x726fdb47dd0e0e31L);
    (1, 0x74f839c593dc67fdL);
    (2, 0x0d6c8009d9a94f5aL);
    (3, 0x85676696d7fb7e2dL);
    (4, 0xcf2794e0277187b7L);
    (5, 0x18765564cd99a68dL);
    (6, 0xcbc9466e58fee3ceL);
    (7, 0xab0200f58b01d137L);
    (8, 0x93f5f5799a932462L);
    (15, 0xa129ca6149be45e5L);
    (16, 0x3f2acc7f57c29bdbL) ]

let test_siphash_vectors () =
  List.iter
    (fun (n, expected) ->
      let msg = String.init n Char.chr in
      Alcotest.(check int64)
        (Printf.sprintf "siphash len %d" n)
        expected (Siphash.hash reference_key msg))
    reference_vectors

let test_siphash_key_sensitivity () =
  let k2 = Siphash.key_of_ints 0x0706050403020100L 0x0f0e0d0c0b0a0909L in
  Alcotest.(check bool) "different key, different hash" true
    (Siphash.hash reference_key "hello" <> Siphash.hash k2 "hello")

let test_siphash_int64s_deterministic () =
  let h1 = Siphash.hash_int64s reference_key [ 1L; 2L; 3L ] in
  let h2 = Siphash.hash_int64s reference_key [ 1L; 2L; 3L ] in
  let h3 = Siphash.hash_int64s reference_key [ 1L; 3L; 2L ] in
  Alcotest.(check int64) "deterministic" h1 h2;
  Alcotest.(check bool) "order matters" true (h1 <> h3)

let test_key_of_string_stable () =
  let k1 = Siphash.key_of_string "router-7" in
  let k2 = Siphash.key_of_string "router-7" in
  Alcotest.(check bool) "stable" true (Siphash.hash k1 "x" = Siphash.hash k2 "x");
  let k3 = Siphash.key_of_string "router-8" in
  Alcotest.(check bool) "distinct" true (Siphash.hash k1 "x" <> Siphash.hash k3 "x")

(* --- Keyring --- *)

let ring = Keyring.create ~n:8 ()

let test_pairwise_symmetric () =
  for a = 0 to 7 do
    for b = 0 to 7 do
      let kab = Keyring.pairwise ring a b and kba = Keyring.pairwise ring b a in
      Alcotest.(check int64)
        (Printf.sprintf "pairwise %d %d" a b)
        (Siphash.hash kab "m") (Siphash.hash kba "m")
    done
  done

let test_pairwise_distinct_pairs () =
  let h01 = Siphash.hash (Keyring.pairwise ring 0 1) "m" in
  let h02 = Siphash.hash (Keyring.pairwise ring 0 2) "m" in
  Alcotest.(check bool) "pairs differ" true (h01 <> h02)

let test_sign_verify () =
  let tag = Keyring.sign ring ~signer:3 "traffic summary" in
  Alcotest.(check bool) "verifies" true (Keyring.verify ring ~signer:3 "traffic summary" tag);
  Alcotest.(check bool) "wrong message rejected" false
    (Keyring.verify ring ~signer:3 "tampered" tag);
  Alcotest.(check bool) "wrong signer rejected" false
    (Keyring.verify ring ~signer:4 "traffic summary" tag);
  Alcotest.(check bool) "forge rejected" false
    (Keyring.verify ring ~signer:3 "traffic summary" Keyring.forge_attempt)

let test_sign_words () =
  let words = [ 77L; 12L ] in
  let tag = Keyring.sign_words ring ~signer:1 words in
  Alcotest.(check bool) "verifies" true (Keyring.verify_words ring ~signer:1 words tag);
  Alcotest.(check bool) "altered rejected" false
    (Keyring.verify_words ring ~signer:1 [ 77L; 13L ] tag)

let test_keyring_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Keyring.pairwise: router id 9 outside [0,8)")
    (fun () -> ignore (Keyring.pairwise ring 9 0))

let test_keyring_determinism_across_instances () =
  let ring2 = Keyring.create ~n:8 () in
  Alcotest.(check int64) "same seed, same keys"
    (Keyring.sign ring ~signer:2 "m" :> int64)
    (Keyring.sign ring2 ~signer:2 "m" :> int64);
  let ring3 = Keyring.create ~seed:"other" ~n:8 () in
  Alcotest.(check bool) "different seed, different keys" true
    (not
       (Int64.equal
          (Keyring.sign ring ~signer:2 "m" :> int64)
          (Keyring.sign ring3 ~signer:2 "m" :> int64)))

(* --- Sampling --- *)

let test_sampling_all () =
  for i = 0 to 100 do
    if not (Sampling.selects Sampling.all (Int64.of_int i)) then
      Alcotest.fail "all sampler must select everything"
  done

let test_sampling_fraction () =
  let key = Siphash.key_of_string "sampler" in
  let s = Sampling.create ~key ~fraction:0.25 in
  let selected = ref 0 in
  let n = 40000 in
  for i = 1 to n do
    if Sampling.selects s (Int64.of_int (i * 7919)) then incr selected
  done;
  let freq = float_of_int !selected /. float_of_int n in
  if Float.abs (freq -. 0.25) > 0.02 then
    Alcotest.failf "sampling frequency %.4f too far from 0.25" freq

let test_sampling_agreement () =
  (* Both ends of a path-segment with the same key pick the same subset:
     the property Πk+2 subsampling relies on (§5.2.1). *)
  let key = Siphash.key_of_string "shared" in
  let s1 = Sampling.create ~key ~fraction:0.5 in
  let s2 = Sampling.create ~key ~fraction:0.5 in
  for i = 0 to 1000 do
    let fp = Int64.of_int (i * 104729) in
    Alcotest.(check bool) "agree" (Sampling.selects s1 fp) (Sampling.selects s2 fp)
  done

let test_sampling_zero () =
  let key = Siphash.key_of_string "zero" in
  let s = Sampling.create ~key ~fraction:0.0 in
  let any = ref false in
  for i = 0 to 1000 do
    if Sampling.selects s (Int64.of_int i) then any := true
  done;
  Alcotest.(check bool) "selects none" false !any

(* properties *)

let prop_siphash_deterministic =
  QCheck.Test.make ~name:"siphash deterministic" ~count:300 QCheck.string (fun s ->
      Siphash.hash reference_key s = Siphash.hash reference_key s)

let prop_siphash_no_trivial_collision =
  QCheck.Test.make ~name:"distinct strings rarely collide" ~count:300
    QCheck.(pair string string)
    (fun (a, b) -> a = b || Siphash.hash reference_key a <> Siphash.hash reference_key b)

let prop_sign_roundtrip =
  QCheck.Test.make ~name:"sign/verify roundtrip" ~count:200
    QCheck.(pair (int_bound 7) string)
    (fun (signer, msg) ->
      Keyring.verify ring ~signer msg (Keyring.sign ring ~signer msg))


(* --- SHA-256 / HMAC --- *)

let test_sha256_vectors () =
  (* FIPS 180-4 / NIST example vectors. *)
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc");
  Alcotest.(check string) "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* Two-block (896-bit) NIST vector. *)
  Alcotest.(check string) "896-bit"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.digest_hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu");
  (* One million 'a' — the classic long-message vector; ~6 ms with the
     unrolled kernel, cheap enough to keep in the quick suite. *)
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha256_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must all work
     and differ. *)
  let digests =
    List.map (fun n -> Sha256.digest_hex (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  Alcotest.(check int) "all distinct" (List.length digests)
    (List.length (List.sort_uniq compare digests))

let test_hmac_sha256_vectors () =
  (* The full RFC 4231 HMAC-SHA-256 vector set.  tc6/tc7 use a 131-byte
     key and so exercise the hash-the-key path of [hmac_key]. *)
  let check name ~key data expected =
    Alcotest.(check string) name expected (Sha256.hmac_hex ~key data)
  in
  check "rfc4231 tc1" ~key:(String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "rfc4231 tc2" ~key:"Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "rfc4231 tc3" ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  check "rfc4231 tc4"
    ~key:(String.init 25 (fun i -> Char.chr (i + 1)))
    (String.make 50 '\xcd')
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b";
  (* tc5 is defined on the 128-bit truncation of the tag. *)
  Alcotest.(check string) "rfc4231 tc5 (truncated-128)"
    "a3b6167473100ee06e0c796c2955552b"
    (String.sub (Sha256.hmac_hex ~key:(String.make 20 '\x0c') "Test With Truncation") 0 32);
  check "rfc4231 tc6" ~key:(String.make 131 '\xaa')
    "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54";
  check "rfc4231 tc7" ~key:(String.make 131 '\xaa')
    "This is a test using a larger than block-size key and a larger than \
     block-size data. The key needs to be hashed before being used by the \
     HMAC algorithm."
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"

let test_streaming_matches_one_shot () =
  (* Absorbing the message in arbitrary chunk sizes must agree with the
     one-shot digest, for lengths across several block boundaries. *)
  let rng = Random.State.make [| 0x5eed |] in
  List.iter
    (fun n ->
      let msg = String.init n (fun i -> Char.chr ((i * 131) land 0xff)) in
      let ctx = Sha256.init () in
      let pos = ref 0 in
      while !pos < n do
        let len = min (n - !pos) (1 + Random.State.int rng 97) in
        Sha256.update ~off:!pos ~len ctx msg;
        pos := !pos + len
      done;
      Alcotest.(check string)
        (Printf.sprintf "streaming len %d" n)
        (Sha256.digest msg) (Sha256.final ctx))
    [ 0; 1; 55; 56; 63; 64; 65; 127; 128; 129; 1500; 4096 ]

let test_hmac_key_caching () =
  (* hmac_with under a precomputed key is the same function as the
     one-shot hmac, and hmac64 is its 8-byte big-endian prefix. *)
  let keys = [ ""; "k"; String.make 64 'K'; String.make 131 '\xaa' ] in
  let msgs = [ ""; "x"; String.init 1500 (fun i -> Char.chr ((i * 7) land 0xff)) ] in
  List.iter
    (fun key ->
      let hk = Sha256.hmac_key ~key in
      List.iter
        (fun msg ->
          let tag = Sha256.hmac ~key msg in
          Alcotest.(check string) "cached key agrees" tag (Sha256.hmac_with hk msg);
          let prefix = ref 0L in
          for i = 0 to 7 do
            prefix :=
              Int64.logor (Int64.shift_left !prefix 8)
                (Int64.of_int (Char.code tag.[i]))
          done;
          Alcotest.(check int64) "hmac64 prefix" !prefix (Sha256.hmac64 hk msg))
        msgs)
    keys

let test_digest64 () =
  (* First 8 bytes of SHA-256("abc") big-endian. *)
  Alcotest.(check int64) "prefix" 0xba7816bf8f01cfeaL (Sha256.digest64 "abc");
  Alcotest.(check bool) "distinct" true (Sha256.digest64 "a" <> Sha256.digest64 "b")

let prop_sha256_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic, length 32" ~count:200 QCheck.string
    (fun s -> Sha256.digest s = Sha256.digest s && String.length (Sha256.digest s) = 32)

let prop_sha256_matches_reference =
  (* Differential test of the unrolled kernel against the boring Int32
     reference implementation kept in [Sha256_ref]. *)
  QCheck.Test.make ~name:"sha256 matches reference impl" ~count:300 QCheck.string
    (fun s -> Sha256.digest s = Sha256_ref.digest s)

let prop_hmac_matches_reference =
  QCheck.Test.make ~name:"hmac matches reference impl" ~count:200
    QCheck.(pair string string)
    (fun (key, msg) -> Sha256.hmac ~key msg = Sha256_ref.hmac ~key msg)

let prop_hmac_key_sensitive =
  QCheck.Test.make ~name:"hmac distinguishes keys" ~count:200
    QCheck.(triple string string string)
    (fun (k1, k2, msg) ->
      k1 = k2 || Sha256.hmac ~key:k1 msg <> Sha256.hmac ~key:k2 msg)

let () =
  Alcotest.run "crypto_sim"
    [ ( "fnv",
        [ Alcotest.test_case "known vectors" `Quick test_fnv_known;
          Alcotest.test_case "int64 consistent" `Quick test_fnv_int64_consistent;
          Alcotest.test_case "combine chains" `Quick test_fnv_combine_chains ] );
      ( "siphash",
        [ Alcotest.test_case "reference vectors" `Quick test_siphash_vectors;
          Alcotest.test_case "key sensitivity" `Quick test_siphash_key_sensitivity;
          Alcotest.test_case "word hashing" `Quick test_siphash_int64s_deterministic;
          Alcotest.test_case "key_of_string" `Quick test_key_of_string_stable ] );
      ( "keyring",
        [ Alcotest.test_case "pairwise symmetric" `Quick test_pairwise_symmetric;
          Alcotest.test_case "pairwise distinct" `Quick test_pairwise_distinct_pairs;
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "sign words" `Quick test_sign_words;
          Alcotest.test_case "bounds" `Quick test_keyring_bounds;
          Alcotest.test_case "determinism" `Quick test_keyring_determinism_across_instances
        ] );
      ( "sampling",
        [ Alcotest.test_case "all" `Quick test_sampling_all;
          Alcotest.test_case "fraction" `Quick test_sampling_fraction;
          Alcotest.test_case "agreement" `Quick test_sampling_agreement;
          Alcotest.test_case "zero" `Quick test_sampling_zero ] );
      ( "sha256",
        [ Alcotest.test_case "digest vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_padding_boundaries;
          Alcotest.test_case "hmac vectors (rfc4231)" `Quick test_hmac_sha256_vectors;
          Alcotest.test_case "streaming = one-shot" `Quick test_streaming_matches_one_shot;
          Alcotest.test_case "hmac key caching" `Quick test_hmac_key_caching;
          Alcotest.test_case "digest64" `Quick test_digest64 ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_siphash_deterministic; prop_siphash_no_trivial_collision;
            prop_sign_roundtrip; prop_sha256_deterministic;
            prop_sha256_matches_reference; prop_hmac_matches_reference;
            prop_hmac_key_sensitive ] ) ]
