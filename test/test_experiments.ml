(* Golden tests for the typed experiment layer: the registry itself,
   the Domain pool's determinism (jobs=1 vs jobs=4 must agree bit for
   bit), structural invariants on cheap experiments' eval output
   (Fig 5.2 monotonicity, Table 5.1 counter bounds), packet
   conservation in the Fig 6.4 bottleneck scenario, and the merged
   mrdetect-experiments-v1 JSON document. *)

module Exp = Experiments.Exp
module Pool = Experiments.Pool
module Registry = Experiments.Registry

(* --- registry sanity --- *)

let test_registry_ids () =
  let ids = List.map (fun (e : Exp.entry) -> e.id) Registry.all in
  Alcotest.(check int) "nineteen experiments" 19 (List.length ids);
  Alcotest.(check bool) "ids are unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  List.iter
    (fun (e : Exp.entry) ->
      Alcotest.(check bool) (e.id ^ " has doc") true (String.length e.doc > 0);
      match Registry.find e.id with
      | Some found -> Alcotest.(check string) "find returns it" e.id found.id
      | None -> Alcotest.failf "find %S returned nothing" e.id)
    Registry.all

let test_registry_quick () =
  Alcotest.(check bool) "quick subset is non-empty" true (Registry.quick <> []);
  List.iter
    (fun (e : Exp.entry) ->
      Alcotest.(check bool) (e.id ^ " is Quick") true (e.cost = Exp.Quick))
    Registry.quick

(* --- pool semantics --- *)

let test_pool_order_and_parallelism () =
  let xs = List.init 23 Fun.id in
  let f x = (x * x) + 1 in
  let serial = Pool.map ~jobs:1 f xs in
  Alcotest.(check (list int)) "serial maps in order" (List.map f xs) serial;
  Alcotest.(check (list int)) "jobs=4 returns the same list" serial
    (Pool.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "more jobs than tasks" [ 2; 5 ]
    (Pool.map ~jobs:16 f [ 1; 2 ]);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 f [])

let test_pool_exception () =
  let boom x = if x = 2 then failwith "boom" else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d re-raises the task's exception" jobs)
        (Failure "boom")
        (fun () -> ignore (Pool.map ~jobs boom [ 0; 1; 2; 3 ])))
    [ 1; 4 ]

let test_pool_rng_isolation () =
  (* The per-task PRNG reset means a task's draw from the global
     generator depends only on its index — whatever ran before it. *)
  let draw _ = Random.int 1_000_000 in
  let a = Pool.map ~jobs:1 draw [ (); (); () ] in
  let b = Pool.map ~jobs:3 draw [ (); (); () ] in
  Alcotest.(check (list int)) "global draws identical across jobs" a b

(* --- Fig 5.2: |Pr| monotone in k --- *)

let test_pr_monotone () =
  List.iter
    (fun protocol ->
      let series =
        Experiments.Fig_pr.sweep ~protocol ~topology:`Ebone ~ks:[ 1; 2; 4 ] ()
      in
      let maxes = List.map (fun s -> s.Experiments.Fig_pr.max_pr) series in
      let rec non_decreasing = function
        | a :: (b :: _ as tl) -> a <= b && non_decreasing tl
        | _ -> true
      in
      Alcotest.(check bool) "max |Pr| non-decreasing in k" true
        (non_decreasing maxes);
      List.iter
        (fun s ->
          let open Experiments.Fig_pr in
          Alcotest.(check bool) "mean <= max" true (s.mean_pr <= s.max_pr);
          Alcotest.(check bool) "median <= max" true (s.median_pr <= s.max_pr);
          Alcotest.(check bool) "positive" true (s.max_pr > 0.0))
        series)
    [ `Pi2; `Pik2 ]

(* --- Table 5.1: counter-state invariants on the eval output --- *)

let number_exn c =
  match Exp.number c with
  | Some v -> v
  | None -> Alcotest.fail "expected a numeric cell"

let test_state_counters () =
  let result = Experiments.Tab_state.eval () in
  Alcotest.(check string) "id" "state" result.Exp.id;
  let section =
    match Exp.find_section result ~prefix:"Table 5.1/7.2" with
    | Some s -> s
    | None -> Alcotest.fail "missing counter-state section"
  in
  let table =
    match Exp.first_table section with
    | Some t -> t
    | None -> Alcotest.fail "counter section has no table"
  in
  let avgs = List.map number_exn (Exp.column table "avg") in
  let maxes = List.map number_exn (Exp.column table "max") in
  Alcotest.(check int) "WATCHERS + (Pi2, Pik+2) x k in {2,7}" 5
    (List.length avgs);
  List.iter2
    (fun avg mx ->
      Alcotest.(check bool) "0 < avg" true (avg > 0.0);
      Alcotest.(check bool) "avg <= max" true (avg <= mx))
    avgs maxes;
  (* The dissertation's headline: WATCHERS keeps orders of magnitude
     more counters than either path-segment protocol (T5.1). *)
  match maxes with
  | watchers :: rest ->
      List.iter
        (fun m -> Alcotest.(check bool) "WATCHERS max dominates" true (watchers > m))
        rest
  | [] -> Alcotest.fail "no rows"

(* --- Fig 6.4 scenario: packet conservation under attack --- *)

let test_droptail_conservation () =
  let probe = Netsim.Probe.create () in
  let run =
    Experiments.Scenario.run_droptail ~duration:30.0 ~probe
      ~attack:(fun victims ->
        Some
          (Core.Adversary.on_flows victims (Core.Adversary.drop_fraction ~seed:5 0.2)))
      ()
  in
  let c = Netsim.Probe.conservation probe in
  Alcotest.(check bool) "packets injected" true (c.Netsim.Probe.total_injected > 0);
  Alcotest.(check bool) "packets delivered" true (c.Netsim.Probe.total_delivered > 0);
  Alcotest.(check bool) "attack caused drops" true (run.Experiments.Scenario.truth.Experiments.Scenario.malicious_drops > 0);
  Alcotest.(check bool) "dropped counter saw them" true
    (c.Netsim.Probe.total_dropped >= run.Experiments.Scenario.truth.Experiments.Scenario.malicious_drops);
  Alcotest.(check bool) "no packet unaccounted for" true
    (c.Netsim.Probe.in_flight >= 0);
  Alcotest.(check int) "conservation identity" c.Netsim.Probe.total_injected
    (c.Netsim.Probe.total_delivered + c.Netsim.Probe.total_dropped
    + c.Netsim.Probe.total_fragmented + c.Netsim.Probe.in_flight)

(* --- jobs=1 vs jobs=4: identical results and identical JSON --- *)

let test_parallel_determinism () =
  let serial = Registry.eval_all ~jobs:1 ~entries:Registry.quick () in
  let parallel = Registry.eval_all ~jobs:4 ~entries:Registry.quick () in
  Alcotest.(check bool) "Exp.result values are structurally equal" true
    (serial = parallel);
  let doc results = Telemetry.Export.to_string (Registry.json_document results) in
  Alcotest.(check string) "merged JSON documents byte-identical" (doc serial)
    (doc parallel)

let test_json_document_roundtrip () =
  let results = Registry.eval_all ~jobs:1 ~entries:Registry.quick () in
  let s = Telemetry.Export.to_string (Registry.json_document results) in
  match Telemetry.Export.of_string s with
  | Error e -> Alcotest.failf "document does not parse back: %s" e
  | Ok (Telemetry.Export.Assoc fields) ->
      (match List.assoc_opt "schema" fields with
      | Some (Telemetry.Export.String "mrdetect-experiments-v1") -> ()
      | _ -> Alcotest.fail "missing or wrong schema field");
      (match List.assoc_opt "results" fields with
      | Some (Telemetry.Export.List l) ->
          Alcotest.(check int) "one JSON result per experiment"
            (List.length results) (List.length l)
      | _ -> Alcotest.fail "missing results array")
  | Ok _ -> Alcotest.fail "document is not an object"

let () =
  Alcotest.run "experiments"
    [ ( "registry",
        [ Alcotest.test_case "ids and find" `Quick test_registry_ids;
          Alcotest.test_case "quick subset" `Quick test_registry_quick ] );
      ( "pool",
        [ Alcotest.test_case "order and parallelism" `Quick
            test_pool_order_and_parallelism;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "rng isolation" `Quick test_pool_rng_isolation ] );
      ( "invariants",
        [ Alcotest.test_case "fig 5.2 |Pr| monotone in k" `Quick test_pr_monotone;
          Alcotest.test_case "table 5.1 counter state" `Quick test_state_counters;
          Alcotest.test_case "fig 6.4 packet conservation" `Slow
            test_droptail_conservation ] );
      ( "parallel",
        [ Alcotest.test_case "jobs=4 equals jobs=1" `Quick
            test_parallel_determinism;
          Alcotest.test_case "json document roundtrip" `Quick
            test_json_document_roundtrip ] ) ]
