(* The fault-injection subsystem and the protocols' hardening against
   it: schedule text round-trips, chaos generation under a budget, the
   lossy control channel's replay determinism, the injector's link/crash
   refcounting, fatih's graceful degradation, the adversary-builder
   combinators, and — the golden property — injected benign churn
   producing zero false accusations from chi and fatih on ring8, scored
   by the ground-truth oracle. *)

open Netsim
module Schedule = Faults.Schedule
module Chaos = Faults.Chaos
module Injector = Faults.Injector
module Oracle = Faults.Oracle
module Ctrl = Core.Ctrl
module Rob = Experiments.Fig_robustness

(* --- schedules: text form --- *)

let rich_schedule =
  { Schedule.seed = 42;
    actions =
      [ Schedule.Link_down { src = 0; dst = 1; at = 3.0 };
        Schedule.Link_up { src = 0; dst = 1; at = 6.25 };
        Schedule.Crash { router = 3; at = 10.0 };
        Schedule.Restart { router = 3; at = 15.5 };
        Schedule.Msg_loss { src = 0; dst = 1; prob = 0.2 };
        Schedule.Msg_dup { src = 1; dst = 2; prob = 0.05 };
        Schedule.Msg_reorder { src = 2; dst = 3; prob = 0.1; delay = 0.05 };
        Schedule.Clock_skew { router = 2; skew = -0.004 } ] }

let test_roundtrip () =
  let s = rich_schedule in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok s' -> Alcotest.(check bool) "of_string inverts to_string" true (s = s')
  | Error e -> Alcotest.failf "canonical form does not parse: %s" e);
  (* Awkward but exact floats survive the round trip too. *)
  let odd =
    { Schedule.seed = 7;
      actions = [ Schedule.Clock_skew { router = 0; skew = 0.1 +. 0.2 } ] }
  in
  match Schedule.of_string (Schedule.to_string odd) with
  | Ok s' -> Alcotest.(check bool) "float-exact round trip" true (odd = s')
  | Error e -> Alcotest.failf "float form does not parse: %s" e

let test_parse_comments () =
  let text =
    "# a churn plan\n(seed 5)\n\n  # indented comment\n(crash 2 at 4) # trailing\n"
  in
  match Schedule.of_string text with
  | Ok s ->
      Alcotest.(check int) "seed" 5 s.Schedule.seed;
      Alcotest.(check bool) "one action" true
        (s.Schedule.actions = [ Schedule.Crash { router = 2; at = 4.0 } ])
  | Error e -> Alcotest.failf "commented schedule rejected: %s" e

let expect_error name text fragment =
  match Schedule.of_string text with
  | Ok _ -> Alcotest.failf "%s: bogus schedule accepted" name
  | Error e ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: error %S mentions %S" name e fragment)
        true (contains e fragment)

let test_parse_errors () =
  expect_error "missing field" "(seed 1)\n(link-down 0 at 3)" "line 2";
  expect_error "unknown form" "(frobnicate 1 2)" "line 1";
  expect_error "bad number" "(crash x at 3)" "line 1";
  expect_error "unterminated" "(crash 1 at 3" "line 1"

(* Parse errors must cite the offending atom and its exact position,
   not just a line: these pin the full rendered message, column
   included, so a tokenizer regression cannot silently shift blame to
   the wrong atom. *)
let test_parse_positions () =
  let expect_exact name text error =
    match Schedule.of_string text with
    | Ok _ -> Alcotest.failf "%s: bogus schedule accepted" name
    | Error e -> Alcotest.(check string) name error e
  in
  expect_exact "bad integer atom, second line"
    "(seed 1)\n(crash x at 3)"
    "line 2, column 8: router: expected an integer, got \"x\"";
  expect_exact "bad integer atom deep in a byz form"
    "(byz-frame 1 victim 2 extras nope)"
    "line 1, column 30: extras: expected an integer, got \"nope\"";
  expect_exact "wrong keyword cites the atom"
    "(byz-stall 3 wrong 0.5)"
    "line 1, column 14: byz-stall: expected keyword \"margin\", got \"wrong\"";
  expect_exact "unknown head cites the head, indented third line"
    "(seed 1)\n\n  (frobnicate 1)"
    "line 3, column 4: unknown fault form \"frobnicate\"";
  expect_exact "arity error cites the head"
    "(byz-mute 2 from 1 extra)"
    "line 1, column 2: byz-mute: wrong number of arguments (got 4)";
  expect_exact "unterminated form cites its opening paren"
    "(seed 1)\n  (crash 1 at 3"
    "line 2, column 3: unterminated form";
  expect_exact "stray close paren"
    "(seed 1)\n)"
    "line 2, column 1: unexpected ')'";
  expect_exact "bare atom outside a form"
    "crash"
    "line 1, column 1: expected '(', got \"crash\""

let test_validate () =
  let g = Topology.Generate.ring ~n:8 in
  let ok s = Schedule.validate ~graph:g s = Ok () in
  Alcotest.(check bool) "rich plan validates on ring8" true
    (ok { rich_schedule with Schedule.actions = rich_schedule.Schedule.actions });
  let bad actions =
    match Schedule.validate ~graph:g { Schedule.seed = 1; actions } with
    | Ok () -> Alcotest.fail "invalid schedule accepted"
    | Error _ -> ()
  in
  bad [ Schedule.Crash { router = 99; at = 1.0 } ];
  bad [ Schedule.Link_down { src = 0; dst = 4; at = 1.0 } ] (* not a ring link *);
  bad [ Schedule.Link_down { src = 0; dst = 1; at = -1.0 } ];
  bad [ Schedule.Msg_loss { src = 0; dst = 1; prob = 1.5 } ];
  bad [ Schedule.Msg_reorder { src = 0; dst = 1; prob = 0.5; delay = -0.1 } ];
  bad [ Schedule.Clock_skew { router = 0; skew = Float.nan } ]

let test_outage_accounting () =
  let s =
    { Schedule.seed = 1;
      actions =
        [ Schedule.Link_down { src = 0; dst = 1; at = 1.0 };
          Schedule.Crash { router = 3; at = 2.0 };
          Schedule.Link_up { src = 0; dst = 1; at = 3.0 };
          Schedule.Crash { router = 5; at = 3.5 };
          Schedule.Restart { router = 3; at = 4.0 } ] }
  in
  Alcotest.(check int) "two crashes" 2 (Schedule.crash_count s);
  (* Open windows: flap [1,3) and crash 3 [2,4) overlap; crash 5 at 3.5
     overlaps only crash 3. *)
  Alcotest.(check int) "peak concurrent outages" 2
    (Schedule.max_concurrent_outages s);
  let times =
    List.map
      (function
        | Schedule.Link_down { at; _ } | Schedule.Link_up { at; _ }
        | Schedule.Crash { at; _ } | Schedule.Restart { at; _ } ->
            at
        | _ -> Alcotest.fail "untimed action in timed list")
      (Schedule.timed s)
  in
  Alcotest.(check bool) "timed actions sorted" true
    (times = List.sort compare times)

(* --- chaos generation --- *)

let test_chaos_determinism () =
  let g = Topology.Generate.ring ~n:8 in
  let gen seed = Chaos.generate ~seed ~graph:g ~duration:30.0 () in
  Alcotest.(check bool) "same seed, identical schedule" true (gen 5 = gen 5);
  Alcotest.(check bool) "different seed, different schedule" true
    (Schedule.to_string (gen 5) <> Schedule.to_string (gen 6))

let test_chaos_budget () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun budget ->
      List.iter
        (fun seed ->
          let duration = 30.0 in
          let s = Chaos.generate ~seed ~graph:g ~duration ~budget () in
          Alcotest.(check bool) "validates" true
            (Schedule.validate ~graph:g s = Ok ());
          Alcotest.(check bool) "concurrency within budget" true
            (Schedule.max_concurrent_outages s <= budget.Chaos.max_concurrent);
          Alcotest.(check bool) "crashes within budget" true
            (Schedule.crash_count s <= budget.Chaos.max_crashes);
          List.iter
            (fun a ->
              match a with
              | Schedule.Link_down { at; _ } | Schedule.Link_up { at; _ }
              | Schedule.Crash { at; _ } | Schedule.Restart { at; _ } ->
                  Alcotest.(check bool) "window inside 0.9 x duration" true
                    (at >= 0.0 && at <= 0.9 *. duration)
              | Schedule.Msg_loss { prob; _ } ->
                  Alcotest.(check bool) "loss within budget" true
                    (prob <= budget.Chaos.max_msg_loss)
              | Schedule.Msg_dup _ | Schedule.Msg_reorder _ -> ()
              | Schedule.Clock_skew { skew; _ } ->
                  Alcotest.(check bool) "skew within budget" true
                    (Float.abs skew <= budget.Chaos.max_skew)
              | Schedule.Byz_frame _ | Schedule.Byz_equivocate _
              | Schedule.Byz_mute _ | Schedule.Byz_stall _ ->
                  ())
            s.Schedule.actions;
          Alcotest.(check bool) "byzantine roles within budget" true
            (Schedule.byzantine_count s <= budget.Chaos.max_byzantine))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
    [ Chaos.default_budget; Chaos.gentle_budget; Chaos.byzantine_budget ]

(* --- the lossy control channel --- *)

let test_ctrl_extremes () =
  let clean = Ctrl.reliable () in
  (match Ctrl.send clean ~src:0 ~dst:1 ~tag:7 () with
  | Ctrl.Delivered { attempts = 1; _ } -> ()
  | _ -> Alcotest.fail "reliable channel must deliver first try");
  let dead =
    Ctrl.create ~seed:3 ~default:{ Ctrl.clean with Ctrl.loss = 1.0 } ()
  in
  (match Ctrl.send dead ~src:0 ~dst:1 ~tag:7 () with
  | Ctrl.Timed_out { attempts; _ } ->
      Alcotest.(check int) "exhausts the retry budget"
        Ctrl.default_retry.Ctrl.max_attempts attempts
  | Ctrl.Delivered _ -> Alcotest.fail "fully lossy channel delivered");
  let st = Ctrl.stats dead in
  Alcotest.(check int) "one send" 1 st.Ctrl.sends;
  Alcotest.(check int) "all attempts lost" st.Ctrl.attempts st.Ctrl.losses;
  Alcotest.(check int) "one timeout" 1 st.Ctrl.timeouts

(* Pin the documented budget-exhaustion semantics (ctrl.mli): under the
   default retry policy attempt i waits 0.25 * 2^(i-1) seconds, so a
   send into 100% loss times out after exactly 4 attempts having waited
   the geometric sum 0.25 + 0.5 + 1 + 2 = 3.75 s — and the prefix sums
   hold for every truncated budget too. *)
let test_ctrl_budget_exhaustion () =
  let dead () =
    Ctrl.create ~seed:5 ~default:{ Ctrl.clean with Ctrl.loss = 1.0 } ()
  in
  Alcotest.(check int) "default budget is 4 attempts" 4
    Ctrl.default_retry.Ctrl.max_attempts;
  Alcotest.(check (float 1e-12)) "default base timeout" 0.25
    Ctrl.default_retry.Ctrl.base_timeout;
  Alcotest.(check (float 1e-12)) "default backoff doubles" 2.0
    Ctrl.default_retry.Ctrl.backoff;
  (* waited after k attempts = 0.25 * (2^k - 1): the backoff sequence
     0.25/0.5/1/2 s pinned via its prefix sums. *)
  List.iter
    (fun (attempts, expected_wait) ->
      let retry = { Ctrl.default_retry with Ctrl.max_attempts = attempts } in
      match Ctrl.send (dead ()) ~retry ~src:0 ~dst:1 ~tag:99 () with
      | Ctrl.Timed_out { attempts = a; waited } ->
          Alcotest.(check int)
            (Printf.sprintf "budget %d: all attempts used" attempts)
            attempts a;
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "budget %d: geometric wait" attempts)
            expected_wait waited
      | Ctrl.Delivered _ -> Alcotest.fail "fully lossy channel delivered")
    [ (1, 0.25); (2, 0.75); (3, 1.75); (4, 3.75) ];
  (* Exhaustion must be deterministic: an identical fresh channel
     yields the identical outcome. *)
  let once () = Ctrl.send (dead ()) ~src:0 ~dst:1 ~tag:99 () in
  Alcotest.(check bool) "exhaustion replays identically" true (once () = once ())

(* Protocol-faulty endpoints on the channel: a muted router burns the
   whole retry budget of every send touching it without flipping loss
   coins, a staller converts its peers' budget into delivery delay. *)
let test_ctrl_peer_faults () =
  let ch = Ctrl.reliable () in
  Ctrl.set_peer_fault ch ~router:3
    { Ctrl.mute_from = Some 10.0; stall_margin = None };
  (match Ctrl.send ch ~now:5.0 ~src:0 ~dst:3 ~tag:1 () with
  | Ctrl.Delivered _ -> ()
  | Ctrl.Timed_out _ -> Alcotest.fail "mute refused before its start");
  (match Ctrl.send ch ~now:10.0 ~src:0 ~dst:3 ~tag:2 () with
  | Ctrl.Timed_out { attempts = 4; waited } ->
      Alcotest.(check (float 1e-12)) "mute burns the whole budget" 3.75 waited
  | _ -> Alcotest.fail "muted endpoint participated");
  (match Ctrl.send ch ~now:11.0 ~src:3 ~dst:0 ~tag:3 () with
  | Ctrl.Timed_out _ -> ()
  | Ctrl.Delivered _ -> Alcotest.fail "muted source still sent");
  Alcotest.(check int) "mute refusals counted" 2 (Ctrl.stats ch).Ctrl.mutes;
  Ctrl.set_peer_fault ch ~router:3 Ctrl.no_peer_fault;
  (match Ctrl.send ch ~now:12.0 ~src:0 ~dst:3 ~tag:4 () with
  | Ctrl.Delivered _ -> ()
  | Ctrl.Timed_out _ -> Alcotest.fail "cleared mute still refused");
  Ctrl.set_peer_fault ch ~router:6
    { Ctrl.mute_from = None; stall_margin = Some 0.8 };
  (match Ctrl.send ch ~src:0 ~dst:6 ~tag:5 () with
  | Ctrl.Delivered { extra_delay; _ } ->
      Alcotest.(check (float 1e-12)) "staller consumes 80% of the budget"
        (0.8 *. 3.75) extra_delay
  | Ctrl.Timed_out _ -> Alcotest.fail "stalled delivery timed out");
  Alcotest.(check int) "stalls counted" 1 (Ctrl.stats ch).Ctrl.stalls;
  Alcotest.(check bool) "stall margin must lie in [0,1)" true
    (try
       Ctrl.set_peer_fault ch ~router:1
         { Ctrl.mute_from = None; stall_margin = Some 1.0 };
       false
     with Invalid_argument _ -> true)

let test_ctrl_replay_determinism () =
  let faults =
    { Ctrl.loss = 0.4; duplicate = 0.2; reorder = 0.3; reorder_delay = 0.05 }
  in
  let outcomes order =
    let ch = Ctrl.create ~seed:11 ~default:faults () in
    List.map (fun tag -> (tag, Ctrl.send ch ~src:0 ~dst:1 ~tag ())) order
    |> List.sort compare
  in
  (* The per-(src,dst,tag,attempt) coins make the outcome a function of
     the message identity, not the call order. *)
  Alcotest.(check bool) "outcomes independent of send order" true
    (outcomes [ 1; 2; 3; 4; 5 ] = outcomes [ 5; 3; 1; 4; 2 ])

let test_ctrl_validation () =
  Alcotest.(check bool) "loss outside [0,1] rejected" true
    (try
       ignore (Ctrl.create ~default:{ Ctrl.clean with Ctrl.loss = 1.5 } ());
       false
     with Invalid_argument _ -> true);
  let ch = Ctrl.reliable () in
  Alcotest.(check bool) "bad retry rejected" true
    (try
       ignore
         (Ctrl.send ch
            ~retry:{ Ctrl.max_attempts = 0; base_timeout = 0.1; backoff = 2.0 }
            ~src:0 ~dst:1 ~tag:0 ());
       false
     with Invalid_argument _ -> true)

(* --- the injector --- *)

let line3 () =
  let g = Topology.Generate.line ~n:3 in
  let net = Net.create ~seed:1 ~jitter_bound:100e-6 g in
  let probe = Probe.create () in
  Net.set_probe net (Some probe);
  Net.use_routing net (Topology.Routing.compute g);
  (net, probe)

let up net ~src ~dst =
  match Net.iface net ~src ~dst with
  | Some i -> Iface.is_up i
  | None -> Alcotest.failf "no link %d->%d" src dst

let test_injector_link_window () =
  let net, probe = line3 () in
  let s =
    { Schedule.seed = 1;
      actions =
        [ Schedule.Link_down { src = 1; dst = 2; at = 1.0 };
          Schedule.Link_up { src = 1; dst = 2; at = 3.0 } ] }
  in
  let inj = Injector.apply ~probe ~net s in
  ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:100.0 ~size:300 ~start:0.0 ~stop:5.0);
  Net.run ~until:2.0 net;
  Alcotest.(check bool) "link down inside the window" false (up net ~src:1 ~dst:2);
  Net.run ~until:5.0 net;
  Alcotest.(check bool) "link restored after the window" true (up net ~src:1 ~dst:2);
  Alcotest.(check int) "both fault records emitted" 2 (Injector.injected inj);
  let cons = Probe.conservation probe in
  Alcotest.(check bool) "window dropped traffic as benign link_down" true
    (cons.Probe.total_dropped > 0);
  Alcotest.(check bool) "traffic flowed outside the window" true
    (cons.Probe.total_delivered > 0)

let test_injector_crash_refcount () =
  (* A crash window nested inside a link flap: the restart must not
     resurrect the link the flap still holds down. *)
  let net, probe = line3 () in
  let s =
    { Schedule.seed = 1;
      actions =
        [ Schedule.Link_down { src = 1; dst = 2; at = 1.0 };
          Schedule.Crash { router = 2; at = 1.5 };
          Schedule.Restart { router = 2; at = 2.0 };
          Schedule.Link_up { src = 1; dst = 2; at = 3.0 } ] }
  in
  ignore (Injector.apply ~probe ~net s);
  Net.run ~until:1.75 net;
  Alcotest.(check bool) "crash downs the reverse link too" false
    (up net ~src:2 ~dst:1);
  Net.run ~until:2.5 net;
  Alcotest.(check bool) "restart restores the crash-only link" true
    (up net ~src:2 ~dst:1);
  Alcotest.(check bool) "flapped link still held down after restart" false
    (up net ~src:1 ~dst:2);
  Net.run ~until:3.5 net;
  Alcotest.(check bool) "link-up finally restores it" true (up net ~src:1 ~dst:2)

let test_injector_ctrl_and_skew () =
  let s =
    { Schedule.seed = 9;
      actions =
        [ Schedule.Msg_loss { src = 0; dst = 1; prob = 1.0 };
          Schedule.Clock_skew { router = 3; skew = 0.002 } ] }
  in
  let ch = Injector.ctrl s in
  (match Ctrl.send ch ~src:0 ~dst:1 ~tag:1 () with
  | Ctrl.Timed_out _ -> ()
  | Ctrl.Delivered _ -> Alcotest.fail "fully lossy channel delivered");
  (match Ctrl.send ch ~src:1 ~dst:0 ~tag:1 () with
  | Ctrl.Delivered _ -> ()
  | Ctrl.Timed_out _ -> Alcotest.fail "clean reverse direction timed out");
  let skew = Injector.skew_fn s in
  Alcotest.(check (float 1e-12)) "skewed router" 0.002 (skew 3);
  Alcotest.(check (float 1e-12)) "default zero" 0.0 (skew 0)

(* --- oracle scoring --- *)

let verdict ?subject ?(suspects = []) ~alarm time =
  { Probe.time; detector = "test"; subject; suspects; confidence = None; alarm;
    detail = "" }

let test_oracle_scoring () =
  let vs =
    [ verdict ~subject:1 ~alarm:false 5.0;
      verdict ~subject:2 ~alarm:true 12.0;
      verdict ~subject:3 ~alarm:true 13.0;
      verdict ~suspects:[ 4; 2 ] ~alarm:true 14.0 ]
  in
  let o = Oracle.score ~malicious:[ 2 ] ~attack_start:10.0 vs in
  Alcotest.(check int) "verdicts" 4 o.Oracle.verdicts;
  Alcotest.(check int) "alarms" 3 o.Oracle.alarms;
  Alcotest.(check int) "true alarms (subject and suspects)" 2 o.Oracle.true_alarms;
  Alcotest.(check int) "false alarms" 1 o.Oracle.false_alarms;
  Alcotest.(check (list int)) "detected" [ 2 ] o.Oracle.detected;
  Alcotest.(check (list int)) "falsely accused" [ 3 ] o.Oracle.falsely_accused;
  Alcotest.(check (float 1e-9)) "precision" (2.0 /. 3.0) o.Oracle.precision;
  Alcotest.(check (float 1e-9)) "recall" 1.0 o.Oracle.recall;
  Alcotest.(check (float 1e-9)) "FAR" 0.25 o.Oracle.false_accusation_rate;
  (match o.Oracle.detection_latency with
  | Some l -> Alcotest.(check (float 1e-9)) "latency" 2.0 l
  | None -> Alcotest.fail "no latency");
  (* Edge conventions. *)
  let quiet = Oracle.score ~malicious:[ 2 ] [] in
  Alcotest.(check (float 1e-9)) "no alarms, precision 1" 1.0 quiet.Oracle.precision;
  Alcotest.(check (float 1e-9)) "no verdicts, FAR 0" 0.0
    quiet.Oracle.false_accusation_rate;
  Alcotest.(check (float 1e-9)) "missed attacker, recall 0" 0.0 quiet.Oracle.recall;
  let benign = Oracle.score ~malicious:[] [ verdict ~subject:1 ~alarm:false 1.0 ] in
  Alcotest.(check (float 1e-9)) "nothing to detect, recall 1" 1.0
    benign.Oracle.recall

let test_oracle_json () =
  let o =
    Oracle.score ~malicious:[ 2 ] ~attack_start:10.0
      [ verdict ~subject:2 ~alarm:true 12.0 ]
  in
  let doc = Telemetry.Export.to_string (Oracle.merge_json [ o; o ]) in
  match Telemetry.Export.of_string doc with
  | Error e -> Alcotest.failf "report does not parse back: %s" e
  | Ok json ->
      (match Telemetry.Export.member "schema" json with
      | Some (Telemetry.Export.String "mrdetect-robustness-v1") -> ()
      | _ -> Alcotest.fail "missing schema");
      (match Telemetry.Export.member "runs" json with
      | Some (Telemetry.Export.List l) ->
          Alcotest.(check int) "one report per run" 2 (List.length l)
      | _ -> Alcotest.fail "missing runs");
      match Telemetry.Export.member "aggregate" json with
      | Some agg ->
          (* A whole-number float may parse back as an Int. *)
          (match Telemetry.Export.member "worst_precision" agg with
          | Some (Telemetry.Export.Float p) ->
              Alcotest.(check (float 1e-9)) "worst precision" 1.0 p
          | Some (Telemetry.Export.Int p) ->
              Alcotest.(check int) "worst precision" 1 p
          | _ -> Alcotest.fail "missing worst_precision");
          (* The aggregate latency quantiles merge both runs' histograms:
             one true alarm at latency 2.0 per run, and 2.0 sits exactly
             on a bucket edge of the (20, -4) geometry, so the quantile
             upper bound is 2.0 itself. *)
          (match Telemetry.Export.member "detection_latency_quantiles" agg with
          | Some q ->
              (match Telemetry.Export.member "count" q with
              | Some (Telemetry.Export.Int n) ->
                  Alcotest.(check int) "merged latency count" 2 n
              | _ -> Alcotest.fail "missing latency count");
              (match
                 Option.bind
                   (Telemetry.Export.member "p95" q)
                   Telemetry.Export.to_float
               with
              | Some p -> Alcotest.(check (float 1e-9)) "merged p95" 2.0 p
              | None -> Alcotest.fail "missing latency p95")
          | None -> Alcotest.fail "missing detection_latency_quantiles")
      | None -> Alcotest.fail "missing aggregate"

(* Merge edge cases: a run that never rendered a verdict, a run whose
   every alarm was false, and a latency-quantile merge where one side's
   histogram is empty must all aggregate without poisoning the other
   side's numbers. *)
let test_oracle_merge_edges () =
  let get_agg doc path =
    match Telemetry.Export.of_string (Telemetry.Export.to_string doc) with
    | Error e -> Alcotest.failf "merged report does not parse: %s" e
    | Ok json -> (
        match
          List.fold_left
            (fun acc key -> Option.bind acc (Telemetry.Export.member key))
            (Telemetry.Export.member "aggregate" json)
            path
        with
        | Some v -> v
        | None -> Alcotest.failf "aggregate missing %s" (String.concat "." path))
  in
  let as_float = function
    | Telemetry.Export.Float f -> f
    | Telemetry.Export.Int i -> float_of_int i
    | _ -> Alcotest.fail "expected a number"
  in
  (* Zero-verdict run merged with a detecting run: the quiet side
     contributes recall 0 (its attacker went unseen) but no alarms, no
     latency samples, no alpha violations. *)
  let quiet = Oracle.score ~malicious:[ 2 ] [] in
  let seeing =
    Oracle.score ~malicious:[ 2 ] ~attack_start:10.0
      [ verdict ~subject:2 ~alarm:true 12.0 ]
  in
  let doc = Oracle.merge_json [ quiet; seeing ] in
  Alcotest.(check (float 1e-9)) "quiet run drags worst recall to 0" 0.0
    (as_float (get_agg doc [ "worst_recall" ]));
  Alcotest.(check (float 1e-9)) "quiet run does not drag precision" 1.0
    (as_float (get_agg doc [ "worst_precision" ]));
  Alcotest.(check (float 1e-9)) "no false alarms either side" 0.0
    (as_float (get_agg doc [ "total_false_alarms" ]));
  (* One empty latency side: the merged quantiles must equal the
     detecting run's alone — byte-identical documents. *)
  let agg_only = get_agg doc [ "detection_latency_quantiles" ] in
  let agg_alone =
    get_agg (Oracle.merge_json [ seeing ]) [ "detection_latency_quantiles" ]
  in
  Alcotest.(check string) "empty histogram side merges as identity"
    (Telemetry.Export.to_string agg_alone)
    (Telemetry.Export.to_string agg_only);
  Alcotest.(check int) "merged count is the non-empty side's" 1
    (match Telemetry.Export.member "count" agg_only with
    | Some (Telemetry.Export.Int n) -> n
    | _ -> Alcotest.fail "missing count");
  (* Two empty sides: quantiles stay null, not zero. *)
  (match
     get_agg (Oracle.merge_json [ quiet; quiet ]) [ "detection_latency_quantiles" ]
   with
  | Telemetry.Export.Null -> ()
  | _ -> Alcotest.fail "two empty histograms must merge to null");
  (* All-false-alarm run: every alarming verdict implicates only benign
     routers, so precision collapses, FAR saturates, and every alarm is
     an alpha violation. *)
  let framed =
    Oracle.score ~malicious:[ 2 ]
      [ verdict ~subject:5 ~alarm:true 1.0;
        verdict ~suspects:[ 4; 6 ] ~alarm:true 2.0 ]
  in
  Alcotest.(check (float 1e-9)) "all-false precision 0" 0.0 framed.Oracle.precision;
  Alcotest.(check (float 1e-9)) "all-false FAR 1" 1.0
    framed.Oracle.false_accusation_rate;
  Alcotest.(check int) "all alarms are alpha violations" 2
    framed.Oracle.alpha_violations;
  Alcotest.(check int) "subject-named framing counted" 1 framed.Oracle.framed_honest;
  let doc = Oracle.merge_json [ framed; seeing ] in
  Alcotest.(check (float 1e-9)) "framed run drags worst precision to 0" 0.0
    (as_float (get_agg doc [ "worst_precision" ]));
  Alcotest.(check (float 1e-9)) "alpha violations aggregate" 2.0
    (as_float (get_agg doc [ "total_alpha_violations" ]));
  Alcotest.(check (float 1e-9)) "framed honest aggregates" 1.0
    (as_float (get_agg doc [ "total_framed_honest" ]))

(* --- adversary combinators (and their use by the fault runs) --- *)

let mk_ctx ?(now = 0.0) ?(prev = Some 0) () =
  { Router.now; prev; next_hop = 1; queue_occupancy = 0; queue_limit = 64_000;
    red_avg = None }

let mk_pkt ~sim ~flow = Packet.make ~sim ~src:0 ~dst:2 ~flow ~size:100 Packet.Udp

let test_adversary_composition () =
  let sim = Sim.create ~seed:1 () in
  let b = Core.Adversary.after 5.0 (Core.Adversary.on_flows [ 7 ] Core.Adversary.drop_all) in
  let early = mk_ctx ~now:4.0 () and late = mk_ctx ~now:6.0 () in
  let victim = mk_pkt ~sim ~flow:7 and other = mk_pkt ~sim ~flow:8 in
  Alcotest.(check bool) "honest before the start time" true
    (b early victim = Router.Forward);
  Alcotest.(check bool) "drops the victim flow after" true
    (b late victim = Router.Drop);
  Alcotest.(check bool) "other flows forwarded after" true
    (b late other = Router.Forward);
  (* Terminal traffic (prev = None) is always honest, §2.1.4. *)
  Alcotest.(check bool) "own traffic never attacked" true
    (b (mk_ctx ~now:6.0 ~prev:None ()) victim = Router.Forward)

let test_delay_fraction_decisions () =
  let sim = Sim.create ~seed:1 () in
  let b = Core.Adversary.delay_fraction ~seed:4 ~delay:0.05 0.5 in
  let ctx = mk_ctx () in
  let pkts = List.init 400 (fun _ -> mk_pkt ~sim ~flow:1) in
  let delayed, forwarded =
    List.fold_left
      (fun (d, f) p ->
        match b ctx p with
        | Router.Delay t ->
            Alcotest.(check (float 1e-12)) "configured delay" 0.05 t;
            (d + 1, f)
        | Router.Forward -> (d, f + 1)
        | Router.Drop | Router.Modify _ -> Alcotest.fail "unexpected action")
      (0, 0) pkts
  in
  Alcotest.(check int) "every packet decided" 400 (delayed + forwarded);
  Alcotest.(check bool) "roughly the configured fraction delayed" true
    (delayed > 120 && delayed < 280);
  (* The coin is keyed on the packet, so the decision replays. *)
  List.iter
    (fun p -> Alcotest.(check bool) "decision replays" true (b ctx p = b ctx p))
    pkts

let test_delay_fraction_reorders () =
  (* Through a line network: held packets overtake nothing, but the
     packets behind them do overtake, so arrivals leave uid order. *)
  let g = Topology.Generate.line ~n:3 in
  let net = Net.create ~seed:1 ~jitter_bound:100e-6 g in
  Net.use_routing net (Topology.Routing.compute g);
  let arrivals = ref [] in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with
      | Router.Delivered_local pkt when ev.Net.router = 2 ->
          arrivals := pkt.Packet.uid :: !arrivals
      | _ -> ());
  Router.set_behavior (Net.router net 1)
    (Core.Adversary.delay_fraction ~seed:4 ~delay:0.05 0.3);
  ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:200.0 ~size:300 ~start:0.0 ~stop:2.0);
  Net.run ~until:3.0 net;
  let order = List.rev !arrivals in
  Alcotest.(check bool) "traffic arrived" true (List.length order > 100);
  Alcotest.(check bool) "delays reordered the stream" true
    (order <> List.sort compare order);
  Alcotest.(check bool) "nothing was lost, only held" true
    (List.sort compare order = List.sort_uniq compare order)

(* --- fatih hardening: degrade, never accuse --- *)

let test_fatih_degrades_under_full_loss () =
  let dead = Ctrl.create ~seed:3 ~default:{ Ctrl.clean with Ctrl.loss = 1.0 } () in
  let t = Rob.ring_trial ~seed:31 ~duration:20.0 ~ctrl:dead ~attacked:true () in
  Alcotest.(check int) "no verdicts without an exchange" 0 t.Rob.outcome.Oracle.verdicts;
  Alcotest.(check int) "no detections" 0 t.Rob.detections;
  Alcotest.(check bool) "rounds degraded instead" true (t.Rob.degraded > 0);
  Alcotest.(check (float 1e-9)) "and none falsely accused" 0.0
    t.Rob.outcome.Oracle.false_accusation_rate

let test_fatih_detects_with_clean_ctrl () =
  let t =
    Rob.ring_trial ~seed:31 ~duration:30.0 ~ctrl:(Ctrl.reliable ()) ~attacked:true ()
  in
  Alcotest.(check (float 1e-9)) "attacker detected" 1.0 t.Rob.outcome.Oracle.recall;
  Alcotest.(check int) "no false alarms" 0 t.Rob.outcome.Oracle.false_alarms

(* --- the golden robustness property --- *)

let test_golden_fatih_benign_chaos () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun seed ->
      let schedule =
        Chaos.generate ~seed ~graph:g ~duration:20.0 ~budget:Chaos.gentle_budget ()
      in
      let t = Rob.ring_trial ~seed:(100 + seed) ~duration:20.0 ~schedule ~attacked:false () in
      Alcotest.(check bool) "churn was injected" true (t.Rob.faults > 0);
      Alcotest.(check int)
        (Printf.sprintf "fatih, chaos seed %d: zero false alarms" seed)
        0 t.Rob.outcome.Oracle.false_alarms;
      Alcotest.(check (float 1e-9)) "FAR 0" 0.0
        t.Rob.outcome.Oracle.false_accusation_rate)
    [ 1; 2; 3 ]

let test_golden_chi_benign_chaos () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun seed ->
      let duration = 20.0 in
      let schedule =
        Chaos.generate ~seed ~graph:g ~duration ~budget:Chaos.gentle_budget ()
      in
      let probe = Probe.create () in
      let net = Net.create ~seed:(200 + seed) ~jitter_bound:200e-6 g in
      Net.set_probe net (Some probe);
      let rt = Topology.Routing.compute g in
      Net.use_routing net rt;
      ignore (Injector.apply ~probe ~net schedule);
      List.iter
        (fun (s, d) ->
          ignore
            (Flow.cbr net ~src:s ~dst:d ~rate_pps:80.0 ~size:500 ~start:0.0
               ~stop:duration))
        [ (0, 4); (4, 0); (1, 5); (5, 1); (3, 7); (7, 3) ];
      let config = { Core.Chi.default_config with Core.Chi.tau = 2.0 } in
      let skew = Injector.skew_fn schedule in
      ignore
        (Core.Chi.deploy ~net ~rt ~router:2 ~next:1 ~config ~probe
           ~skew:(fun ~reporter -> skew reporter)
           ());
      Net.run ~until:duration net;
      let o = Oracle.of_probe ~malicious:[] probe in
      Alcotest.(check int)
        (Printf.sprintf "chi, chaos seed %d: zero false alarms" seed)
        0 o.Oracle.false_alarms)
    [ 1; 2; 3 ]

let test_schedule_replay_determinism () =
  let g = Topology.Generate.ring ~n:8 in
  let schedule =
    Chaos.generate ~seed:5 ~graph:g ~duration:20.0 ~budget:Chaos.default_budget ()
  in
  let run () = Rob.ring_trial ~seed:31 ~duration:20.0 ~schedule ~attacked:true () in
  Alcotest.(check bool) "identical trials from identical schedules" true
    (run () = run ())

let test_chaos_jobs_determinism () =
  let trials = List.init 4 Fun.id in
  let run jobs =
    Experiments.Pool.map ~jobs
      (Rob.chaos_trial ~seed:3 ~duration:10.0 ~budget:Chaos.default_budget)
      trials
  in
  Alcotest.(check bool) "jobs=4 equals jobs=1 structurally" true (run 1 = run 4)

(* --- simulate flag validation (the CLI contract) --- *)

let test_config_validation () =
  let of_cmdline ?(topology = "ring") ?(protocol = "fatih") ?(duration = 30.0)
      ?(flows = 8) ?(trace_sample = 1.0) ?(attacker = 2) ?(fraction = 0.2)
      ?(shards = 0) () =
    Experiments.Simulate.Config.of_cmdline ~topology ~protocol
      ~attack:"drop-fraction" ~fraction ~attacker ~duration ~seed:1 ~flows
      ~trace:0 ~metrics:None ~journal:None ~trace_out:None ~trace_sample
      ~faults:None ~shards
  in
  (match of_cmdline () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "default config rejected: %s" e);
  let rejected name cfg fragment =
    match cfg with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e ->
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i =
            i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %S names the flag" name e)
          true (contains e fragment)
  in
  rejected "negative duration" (of_cmdline ~duration:(-5.0) ()) "duration";
  rejected "zero duration" (of_cmdline ~duration:0.0 ()) "duration";
  rejected "sample above 1" (of_cmdline ~trace_sample:1.5 ()) "sample";
  rejected "negative sample" (of_cmdline ~trace_sample:(-0.1) ()) "sample";
  rejected "no flows" (of_cmdline ~flows:0 ()) "flow";
  rejected "attacker out of range" (of_cmdline ~attacker:64 ()) "attacker";
  rejected "fraction above 1" (of_cmdline ~fraction:1.5 ()) "fraction";
  rejected "unknown topology" (of_cmdline ~topology:"moebius" ()) "topology";
  rejected "unknown protocol" (of_cmdline ~protocol:"psychic" ()) "protocol";
  rejected "negative shards" (of_cmdline ~shards:(-1) ()) "shards";
  rejected "more shards than routers" (of_cmdline ~shards:9 ()) "shards";
  (match of_cmdline ~shards:4 () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid shard count rejected: %s" e)

let () =
  Alcotest.run "faults"
    [ ( "schedule",
        [ Alcotest.test_case "text round trip" `Quick test_roundtrip;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "parse errors carry lines" `Quick test_parse_errors;
          Alcotest.test_case "parse errors cite atom and column" `Quick
            test_parse_positions;
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "outage accounting" `Quick test_outage_accounting ] );
      ( "chaos",
        [ Alcotest.test_case "seed determinism" `Quick test_chaos_determinism;
          Alcotest.test_case "budget compliance" `Quick test_chaos_budget ] );
      ( "ctrl",
        [ Alcotest.test_case "loss extremes" `Quick test_ctrl_extremes;
          Alcotest.test_case "budget exhaustion backoff" `Quick
            test_ctrl_budget_exhaustion;
          Alcotest.test_case "peer mute and stall faults" `Quick
            test_ctrl_peer_faults;
          Alcotest.test_case "replay determinism" `Quick
            test_ctrl_replay_determinism;
          Alcotest.test_case "validation" `Quick test_ctrl_validation ] );
      ( "injector",
        [ Alcotest.test_case "link-down window" `Quick test_injector_link_window;
          Alcotest.test_case "crash/flap refcount" `Quick
            test_injector_crash_refcount;
          Alcotest.test_case "ctrl and skew from schedule" `Quick
            test_injector_ctrl_and_skew ] );
      ( "oracle",
        [ Alcotest.test_case "scoring" `Quick test_oracle_scoring;
          Alcotest.test_case "json report" `Quick test_oracle_json;
          Alcotest.test_case "merge edge cases" `Quick test_oracle_merge_edges ] );
      ( "adversary",
        [ Alcotest.test_case "after/on_flows composition" `Quick
            test_adversary_composition;
          Alcotest.test_case "delay_fraction decisions" `Quick
            test_delay_fraction_decisions;
          Alcotest.test_case "delay_fraction reorders" `Quick
            test_delay_fraction_reorders ] );
      ( "hardening",
        [ Alcotest.test_case "fatih degrades under full loss" `Slow
            test_fatih_degrades_under_full_loss;
          Alcotest.test_case "fatih detects with clean ctrl" `Slow
            test_fatih_detects_with_clean_ctrl ] );
      ( "golden",
        [ Alcotest.test_case "fatih: benign chaos, zero false accusations" `Slow
            test_golden_fatih_benign_chaos;
          Alcotest.test_case "chi: benign chaos, zero false accusations" `Slow
            test_golden_chi_benign_chaos;
          Alcotest.test_case "schedule replay determinism" `Slow
            test_schedule_replay_determinism;
          Alcotest.test_case "chaos jobs determinism" `Slow
            test_chaos_jobs_determinism ] );
      ( "config",
        [ Alcotest.test_case "simulate flag validation" `Quick
            test_config_validation ] ) ]
