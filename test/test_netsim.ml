(* Tests for the netsim substrate: event engine, queues, RED, interfaces,
   routers with adversarial hooks, flows, ping, and TCP Reno. *)

open Netsim
module G = Topology.Graph
module Gen = Topology.Generate
module Rt = Topology.Routing

(* --- Sim --- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Sim.now sim);
  Alcotest.(check int) "processed" 3 (Sim.events_processed sim)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 2 :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := 3 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !log)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    Sim.schedule sim ~delay:1.0 tick
  in
  Sim.schedule sim ~delay:1.0 tick;
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "five ticks" 5 !fired;
  Alcotest.(check (float 1e-9)) "clock at until" 5.5 (Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref [] in
  Sim.schedule sim ~delay:1.0 (fun () ->
      hits := ("outer", Sim.now sim) :: !hits;
      Sim.schedule sim ~delay:0.5 (fun () -> hits := ("inner", Sim.now sim) :: !hits));
  Sim.run sim;
  match List.rev !hits with
  | [ ("outer", t1); ("inner", t2) ] ->
      Alcotest.(check (float 1e-9)) "outer" 1.0 t1;
      Alcotest.(check (float 1e-9)) "inner" 1.5 t2
  | _ -> Alcotest.fail "wrong event sequence"

let test_sim_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Alcotest.(check bool) "past rejected" true
        (try
           Sim.schedule_at sim ~time:0.5 (fun () -> ());
           false
         with Invalid_argument _ -> true));
  Sim.run sim

let test_sim_fresh_ids () =
  let sim = Sim.create () in
  let a = Sim.fresh_id sim in
  let b = Sim.fresh_id sim in
  let c = Sim.fresh_id sim in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2 ] [ a; b; c ]

(* --- queues --- *)

let mk_pkt sim ?(size = 1000) () =
  Packet.make ~sim ~src:0 ~dst:1 ~flow:0 ~size Packet.Udp

let test_fifo_capacity () =
  let sim = Sim.create () in
  let q = Queue_fifo.create ~limit_bytes:2500 () in
  Alcotest.(check bool) "p1" true (Queue_fifo.try_enqueue q (mk_pkt sim ()));
  Alcotest.(check bool) "p2" true (Queue_fifo.try_enqueue q (mk_pkt sim ()));
  Alcotest.(check bool) "p3 rejected" false (Queue_fifo.try_enqueue q (mk_pkt sim ()));
  Alcotest.(check int) "occupancy" 2000 (Queue_fifo.occupancy q);
  ignore (Queue_fifo.dequeue q);
  Alcotest.(check bool) "fits after dequeue" true (Queue_fifo.try_enqueue q (mk_pkt sim ()))

let test_fifo_order () =
  let sim = Sim.create () in
  let q = Queue_fifo.create () in
  let p1 = mk_pkt sim () and p2 = mk_pkt sim () in
  ignore (Queue_fifo.try_enqueue q p1);
  ignore (Queue_fifo.try_enqueue q p2);
  (match Queue_fifo.dequeue q with
  | Some p -> Alcotest.(check int) "fifo head" p1.Packet.uid p.Packet.uid
  | None -> Alcotest.fail "nonempty");
  Alcotest.(check int) "len" 1 (Queue_fifo.length q)

let test_red_below_min_never_drops () =
  let sim = Sim.create () in
  let rng = Random.State.make [| 9 |] in
  let q = Red.create ~rng () in
  (* Light load: enqueue/dequeue alternating keeps avg near one packet. *)
  for i = 0 to 200 do
    (match Red.enqueue q ~now:(float_of_int i) ~link_bw:1.25e6 (mk_pkt sim ()) with
    | `Enqueued -> ()
    | `Early_drop | `Forced_drop -> Alcotest.fail "drop below min_th");
    ignore (Red.dequeue q ~now:(float_of_int i +. 0.5))
  done

let test_red_drops_between_thresholds () =
  let sim = Sim.create () in
  let rng = Random.State.make [| 9 |] in
  let q = Red.create ~rng () in
  (* Hold the instantaneous queue at ~45000 bytes (between the 30000 and
     60000 thresholds) by pairing each arrival with a departure: the EWMA
     converges to the plateau and early drops fire at ~5% while the
     physical limit is never reached. *)
  let early = ref 0 and forced = ref 0 and admitted = ref 0 in
  let now = ref 0.0 in
  for _ = 0 to 44 do
    now := !now +. 0.0001;
    ignore (Red.enqueue q ~now:!now ~link_bw:1.25e6 (mk_pkt sim ()))
  done;
  for _ = 0 to 3999 do
    now := !now +. 0.0008;
    (match Red.enqueue q ~now:!now ~link_bw:1.25e6 (mk_pkt sim ()) with
    | `Enqueued ->
        incr admitted;
        ignore (Red.dequeue q ~now:!now)
    | `Early_drop -> incr early
    | `Forced_drop -> incr forced);
    if Red.occupancy q > 46000 then ignore (Red.dequeue q ~now:!now)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "early drops happened (%d)" !early)
    true (!early > 50);
  Alcotest.(check int) "no forced drops" 0 !forced;
  Alcotest.(check bool) "plateau EWMA" true
    (Red.avg q > 30000.0 && Red.avg q < 60000.0)

let test_red_pure_functions () =
  let p = Red.default_params in
  Alcotest.(check (float 1e-9)) "below min" 0.0
    (Red.early_drop_probability p ~avg:10000.0 ~count:0);
  Alcotest.(check (float 1e-9)) "above max" 1.0
    (Red.early_drop_probability p ~avg:60001.0 ~count:0);
  let mid = Red.early_drop_probability p ~avg:45000.0 ~count:0 in
  Alcotest.(check (float 1e-9)) "midpoint = max_p/2" 0.05 mid;
  (* Uniformization grows with count. *)
  Alcotest.(check bool) "count grows p" true
    (Red.early_drop_probability p ~avg:45000.0 ~count:10 > mid);
  (* avg decays during idle and rises with occupancy. *)
  let a1 = Red.decay_avg p ~avg:30000.0 ~idle:0.1 ~link_bw:1.25e6 in
  Alcotest.(check bool) "decays" true (a1 < 30000.0);
  Alcotest.(check bool) "rises" true (Red.update_avg p ~avg:1000.0 ~occupancy:30000 > 1000.0)

let test_red_gentle_ramp () =
  let p = { Red.default_params with Red.gentle = true } in
  (* At max_th the base probability is max_p; halfway to 2*max_th it is
     halfway to 1; beyond 2*max_th it is certain. *)
  Alcotest.(check (float 1e-9)) "at max_th" 0.1
    (Red.early_drop_probability p ~avg:60000.0 ~count:0);
  Alcotest.(check (float 1e-9)) "midway" 0.55
    (Red.early_drop_probability p ~avg:90000.0 ~count:0);
  Alcotest.(check (float 1e-9)) "beyond" 1.0
    (Red.early_drop_probability p ~avg:120000.0 ~count:0);
  (* Non-gentle jumps to 1 at max_th. *)
  Alcotest.(check (float 1e-9)) "abrupt" 1.0
    (Red.early_drop_probability Red.default_params ~avg:60000.0 ~count:0)

(* --- iface timing --- *)

let test_iface_timing () =
  (* One packet of 1000 B over a 1.25e6 B/s, 10 ms link: delivery at
     1000/1.25e6 + 0.010 = 10.8 ms. *)
  let sim = Sim.create () in
  let g = G.create ~n:2 in
  G.add_link g ~bw:1.25e6 ~delay:0.010 0 1;
  let delivered = ref None in
  let iface =
    Iface.create ~sim ~link:(G.link_exn g 0 1) ~kind:(Iface.Droptail 64000)
      ~on_event:(fun _ ev ->
        match ev with
        | Iface.Delivered _ -> delivered := Some (Sim.now sim)
        | _ -> ())
      ~deliver:(fun ~prev:_ _ -> ())
      ()
  in
  Iface.enqueue iface (mk_pkt sim ());
  Sim.run sim;
  match !delivered with
  | Some t -> Alcotest.(check (float 1e-9)) "delivery time" 0.0108 t
  | None -> Alcotest.fail "not delivered"

let test_iface_serialization () =
  (* Two packets back to back: second delivered one transmission time
     after the first. *)
  let sim = Sim.create () in
  let g = G.create ~n:2 in
  G.add_link g ~bw:1.25e6 ~delay:0.010 0 1;
  let times = ref [] in
  let iface =
    Iface.create ~sim ~link:(G.link_exn g 0 1) ~kind:(Iface.Droptail 64000)
      ~on_event:(fun _ ev ->
        match ev with Iface.Delivered _ -> times := Sim.now sim :: !times | _ -> ())
      ~deliver:(fun ~prev:_ _ -> ())
      ()
  in
  Iface.enqueue iface (mk_pkt sim ());
  Iface.enqueue iface (mk_pkt sim ());
  Sim.run sim;
  match List.rev !times with
  | [ t1; t2 ] -> Alcotest.(check (float 1e-9)) "spacing = tx time" 0.0008 (t2 -. t1)
  | _ -> Alcotest.fail "expected two deliveries"

(* --- network-level --- *)

let line_net ?(jitter_bound = 0.0) ?(queue = Net.Droptail 64000) n =
  let g = Gen.line ~n in
  let net = Net.create ~queue ~jitter_bound g in
  Net.use_routing net (Rt.compute g);
  net

let test_net_end_to_end () =
  let net = line_net 4 in
  let got = ref [] in
  Net.attach_app net ~node:3 (fun pkt -> got := pkt :: !got);
  let pkt = Packet.make ~sim:(Net.sim net) ~src:0 ~dst:3 ~flow:1 ~size:500 Packet.Udp in
  Net.originate net pkt;
  Net.run net;
  Alcotest.(check int) "delivered" 1 (List.length !got);
  Alcotest.(check int) "ttl decremented twice (transit hops)" 62
    (List.hd !got).Packet.ttl

let test_net_congestion_drops () =
  (* Offer 2x the bottleneck rate; the queue must overflow and drops must
     be congestion drops, not anything else. *)
  let net = line_net 3 in
  let congestion = ref 0 and delivered = ref 0 in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with
      | Iface.Drop_congestion _ -> incr congestion
      | Iface.Delivered _ -> ()
      | _ -> ());
  Net.attach_app net ~node:2 (fun _ -> incr delivered);
  (* Link rate 1.25e6 B/s = 1250 pps of 1000 B; offer 2500 pps. *)
  let f = Flow.cbr net ~src:0 ~dst:2 ~rate_pps:2500.0 ~size:1000 ~start:0.0 ~stop:2.0 in
  Net.run net;
  Alcotest.(check bool) "many drops" true (!congestion > 100);
  Alcotest.(check int) "conservation" (Flow.sent f) (!delivered + !congestion)

let test_net_malicious_drop_counted () =
  let net = line_net 3 in
  let malicious = ref 0 and delivered = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
  Net.attach_app net ~node:2 (fun _ -> incr delivered);
  (* Router 1 drops every 5th transit packet. *)
  let count = ref 0 in
  Router.set_behavior (Net.router net 1) (fun ctx _ ->
      match ctx.Router.prev with
      | Some _ ->
          incr count;
          if !count mod 5 = 0 then Router.Drop else Router.Forward
      | None -> Router.Forward);
  let f = Flow.cbr net ~src:0 ~dst:2 ~rate_pps:100.0 ~size:1000 ~start:0.0 ~stop:1.0 in
  Net.run net;
  Alcotest.(check bool) "some malicious drops" true (!malicious > 10);
  Alcotest.(check int) "conservation" (Flow.sent f) (!delivered + !malicious)

let test_net_modification () =
  let net = line_net 3 in
  let got = ref [] in
  Net.attach_app net ~node:2 (fun pkt -> got := pkt :: !got);
  Router.set_behavior (Net.router net 1) (fun ctx _ ->
      match ctx.Router.prev with
      | Some _ -> Router.Modify 0x6861636bL
      | None -> Router.Forward);
  Net.originate net (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:2 ~flow:1 ~size:100 Packet.Udp);
  Net.run net;
  match !got with
  | [ pkt ] -> Alcotest.(check int64) "payload overwritten" 0x6861636bL pkt.Packet.payload
  | _ -> Alcotest.fail "expected one delivery"

let test_net_ttl_expiry () =
  let net = line_net 5 in
  let expired = ref 0 in
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Ttl_expired _ -> incr expired | _ -> ());
  let pkt =
    Packet.make ~sim:(Net.sim net) ~src:0 ~dst:4 ~flow:1 ~size:100 ~ttl:2 Packet.Udp
  in
  Net.originate net pkt;
  Net.run net;
  Alcotest.(check int) "expired en route" 1 !expired

let test_net_fabrication () =
  let net = line_net 3 in
  let delivered = ref 0 and fabricated = ref 0 in
  Net.attach_app net ~node:2 (fun _ -> incr delivered);
  Net.subscribe_router net (fun ev ->
      match ev.Net.kind with Router.Fabricated _ -> incr fabricated | _ -> ());
  let bogus = Packet.make ~sim:(Net.sim net) ~src:0 ~dst:2 ~flow:9 ~size:100 Packet.Udp in
  Router.fabricate (Net.router net 1) ~next:2 bogus;
  Net.run net;
  Alcotest.(check int) "fabricated" 1 !fabricated;
  Alcotest.(check int) "delivered" 1 !delivered

let test_net_policy_forwarding () =
  let g = Gen.ring ~n:5 in
  let net = Net.create ~jitter_bound:0.0 g in
  let pol = Topology.Policy.compute g ~forbidden:[ [ 0; 1 ] ] in
  Net.use_policy net pol;
  let path_taken = ref [] in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with
      | Iface.Transmit_start _ -> path_taken := ev.Net.router :: !path_taken
      | _ -> ());
  Net.originate net (Packet.make ~sim:(Net.sim net) ~src:0 ~dst:1 ~flow:1 ~size:100 Packet.Udp);
  Net.run net;
  Alcotest.(check (list int)) "long way round" [ 0; 4; 3; 2 ] (List.rev !path_taken)

(* --- flows / ping --- *)

let test_cbr_count () =
  let net = line_net 2 in
  let f = Flow.cbr net ~src:0 ~dst:1 ~rate_pps:10.0 ~size:500 ~start:0.0 ~stop:1.0 in
  let read = Flow.delivered_counter net ~node:1 ~flow:(Flow.flow_id f) in
  Net.run net;
  (* Ticks at 0.0, 0.1, ..., 1.0 inclusive. *)
  Alcotest.(check int) "sent" 11 (Flow.sent f);
  Alcotest.(check int) "all delivered" 11 (read ())

let test_poisson_rate () =
  let net = line_net 2 in
  let f = Flow.poisson net ~src:0 ~dst:1 ~rate_pps:200.0 ~size:200 ~start:0.0 ~stop:10.0 in
  Net.run net;
  let rate = float_of_int (Flow.sent f) /. 10.0 in
  Alcotest.(check bool) (Printf.sprintf "rate %.1f near 200" rate) true
    (Float.abs (rate -. 200.0) < 20.0)

let test_ping_rtt () =
  (* Line 0-1-2, 10 ms links, negligible tx time: RTT = 4 links * 10 ms +
     4 * tx.  size 100 -> tx = 8e-5. *)
  let g = G.create ~n:3 in
  G.add_duplex g ~bw:1.25e6 ~delay:0.010 0 1;
  G.add_duplex g ~bw:1.25e6 ~delay:0.010 1 2;
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let p = Ping.start net ~src:0 ~dst:2 ~interval:0.5 ~start:0.0 ~stop:3.0 () in
  Net.run net;
  Alcotest.(check int) "probes" 7 (Ping.sent p);
  Alcotest.(check int) "no loss" 0 (Ping.lost p);
  List.iter
    (fun (_, rtt) ->
      Alcotest.(check (float 1e-6)) "rtt" (0.040 +. (4.0 *. 8e-5)) rtt)
    (Ping.samples p)

let test_ping_loss () =
  let net = line_net 3 in
  Router.set_behavior (Net.router net 1) (fun ctx pkt ->
      match (ctx.Router.prev, pkt.Packet.proto) with
      | Some _, Packet.Ping _ -> Router.Drop
      | _ -> Router.Forward);
  let p = Ping.start net ~src:0 ~dst:2 ~interval:0.5 ~start:0.0 ~stop:2.0 () in
  Net.run net;
  Alcotest.(check int) "all lost" (Ping.sent p) (Ping.lost p)

(* --- Tracer --- *)

let test_tracer_records_and_bounds () =
  let net = line_net 3 in
  let tracer = Tracer.attach ~net ~capacity:50 () in
  ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:100.0 ~size:200 ~start:0.0 ~stop:1.0);
  Net.run net;
  Alcotest.(check bool) "recorded plenty" true (Tracer.count tracer > 50);
  Alcotest.(check int) "ring bounded" 50 (List.length (Tracer.events tracer));
  (* Lines are timestamped and chronological. *)
  let times =
    List.map (fun line -> float_of_string (List.hd (String.split_on_char ' ' line)))
      (Tracer.events tracer)
  in
  Alcotest.(check bool) "chronological" true (List.sort compare times = times)

let test_tracer_filters () =
  let net = line_net 3 in
  let f1 = Flow.cbr net ~src:0 ~dst:2 ~rate_pps:20.0 ~size:200 ~start:0.0 ~stop:1.0 in
  let f2 = Flow.cbr net ~src:2 ~dst:0 ~rate_pps:20.0 ~size:200 ~start:0.0 ~stop:1.0 in
  let tracer = Tracer.attach ~net ~flows:[ Flow.flow_id f1 ] () in
  Net.run net;
  let marker = Printf.sprintf "flow=%d" (Flow.flow_id f2) in
  List.iter
    (fun line ->
      let contains s sub =
        let n = String.length sub in
        let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
        scan 0
      in
      if contains line marker then Alcotest.fail "filtered flow leaked into trace")
    (Tracer.events tracer)

let test_tracer_marks_malice () =
  let net = line_net 3 in
  Router.set_behavior (Net.router net 1) (Core.Adversary.drop_fraction ~seed:2 0.5);
  let tracer = Tracer.attach ~net ~capacity:5000 () in
  ignore (Flow.cbr net ~src:0 ~dst:2 ~rate_pps:50.0 ~size:200 ~start:0.0 ~stop:1.0);
  Net.run net;
  Alcotest.(check bool) "malicious drops visible" true
    (List.exists
       (fun line ->
         let n = String.length "MALICIOUS-drop" in
         let rec scan i =
           i + n <= String.length line && (String.sub line i n = "MALICIOUS-drop" || scan (i + 1))
         in
         scan 0)
       (Tracer.events tracer))

(* --- TCP --- *)

let test_tcp_completes_transfer () =
  let net = line_net 3 in
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:200_000 () in
  Net.run ~until:60.0 net;
  Alcotest.(check bool) "established" true (Tcp.established conn);
  Alcotest.(check bool) "finished" true (Tcp.finished conn);
  Alcotest.(check int) "all bytes" 200_000 (Tcp.bytes_acked conn)

let test_tcp_goodput_bounded () =
  (* Bottleneck 1.25e6 B/s; goodput must be below it but reasonably high. *)
  let net = line_net 3 in
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:2_000_000 () in
  Net.run ~until:120.0 net;
  Alcotest.(check bool) "finished" true (Tcp.finished conn);
  match Tcp.finish_time conn with
  | None -> Alcotest.fail "finish time missing"
  | Some t ->
      (* The line-rate lower bound is 1.6 s; require better than 50%
         utilization. *)
      Alcotest.(check bool) (Printf.sprintf "finished in %.1fs" t) true (t < 3.2)

let test_tcp_fills_bottleneck_queue () =
  (* A long-lived TCP should create congestion drops at the bottleneck —
     the phenomenon that makes naive loss-counting ambiguous (Ch. 6). *)
  let g = G.create ~n:3 in
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 1;
  G.add_duplex g ~bw:1.25e6 ~delay:0.010 1 2;
  let net = Net.create ~jitter_bound:0.0 ~queue:(Net.Droptail 32000) g in
  Net.use_routing net (Rt.compute g);
  let congestion = ref 0 in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with Iface.Drop_congestion _ -> incr congestion | _ -> ());
  let conn = Tcp.connect net ~src:0 ~dst:2 () in
  Net.run ~until:30.0 net;
  Alcotest.(check bool) "congestion losses occurred" true (!congestion > 0);
  Alcotest.(check bool) "sender retransmitted" true (Tcp.retransmits conn > 0);
  Alcotest.(check bool) "still made progress" true (Tcp.bytes_acked conn > 1_000_000)

let test_tcp_syn_drop_delays_connection () =
  (* Attack 4: dropping the first SYN costs the victim the 3 s initial
     timeout — the disproportionate-impact example of §6.1.1. *)
  let net = line_net 3 in
  let dropped_first = ref false in
  Router.set_behavior (Net.router net 1) (fun ctx pkt ->
      match ctx.Router.prev with
      | Some _ when Packet.is_syn pkt && not !dropped_first ->
          dropped_first := true;
          Router.Drop
      | _ -> Router.Forward);
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:10_000 () in
  Net.run ~until:30.0 net;
  (match Tcp.connect_time conn with
  | Some t -> Alcotest.(check bool) (Printf.sprintf "connect at %.2fs" t) true (t >= 3.0)
  | None -> Alcotest.fail "never connected");
  Alcotest.(check int) "one syn retry" 1 (Tcp.syn_retries conn);
  Alcotest.(check bool) "transfer still finished" true (Tcp.finished conn)

let test_tcp_selective_drops_collapse_goodput () =
  (* Dropping 20% of one flow's data packets (attack 1) wrecks its
     throughput relative to an untouched flow. *)
  let run ~attack =
    let net = line_net 3 in
    let count = ref 0 in
    if attack then
      Router.set_behavior (Net.router net 1) (fun ctx pkt ->
          match (ctx.Router.prev, pkt.Packet.proto) with
          | Some _, Packet.Tcp h when h.Packet.seq >= 0 ->
              incr count;
              if !count mod 5 = 0 then Router.Drop else Router.Forward
          | _ -> Router.Forward);
    let conn = Tcp.connect net ~src:0 ~dst:2 () in
    Net.run ~until:20.0 net;
    Tcp.bytes_acked conn
  in
  let clean = run ~attack:false and attacked = run ~attack:true in
  Alcotest.(check bool)
    (Printf.sprintf "attacked %d << clean %d" attacked clean)
    true
    (float_of_int attacked < 0.25 *. float_of_int clean)

let test_tcp_two_flows_share () =
  let g = G.create ~n:4 in
  (* 0 and 1 feed 2; bottleneck 2 -> 3. *)
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 2;
  G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 2;
  G.add_duplex g ~bw:1.25e6 ~delay:0.005 2 3;
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let c1 = Tcp.connect net ~src:0 ~dst:3 () in
  let c2 = Tcp.connect net ~src:1 ~dst:3 () in
  Net.run ~until:30.0 net;
  let b1 = Tcp.bytes_acked c1 and b2 = Tcp.bytes_acked c2 in
  Alcotest.(check bool) "both progress" true (b1 > 100_000 && b2 > 100_000);
  let ratio = float_of_int (max b1 b2) /. float_of_int (max 1 (min b1 b2)) in
  Alcotest.(check bool) (Printf.sprintf "fairness ratio %.2f" ratio) true (ratio < 4.0)

let test_link_failure () =
  let net = line_net 3 in
  let down = ref 0 and delivered = ref 0 in
  Net.subscribe_iface net (fun ev ->
      match ev.Net.kind with Iface.Drop_link_down _ -> incr down | _ -> ());
  Net.attach_app net ~node:2 (fun _ -> incr delivered);
  let f = Flow.cbr net ~src:0 ~dst:2 ~rate_pps:10.0 ~size:200 ~start:0.0 ~stop:3.0 in
  let sim = Net.sim net in
  Sim.schedule sim ~delay:1.0 (fun () -> Net.fail_link net ~src:1 ~dst:2);
  Sim.schedule sim ~delay:2.0 (fun () -> Net.restore_link net ~src:1 ~dst:2);
  Net.run net;
  Alcotest.(check bool) "packets lost while down" true (!down > 5);
  Alcotest.(check int) "conservation" (Flow.sent f) (!delivered + !down)

let test_link_failure_buffered_resume () =
  (* Packets already queued when the link fails are transmitted after
     restoration. *)
  let g = G.create ~n:2 in
  G.add_link g ~bw:1.25e6 ~delay:0.001 0 1;
  let net = Net.create ~jitter_bound:0.0 g in
  Net.use_routing net (Rt.compute g);
  let delivered = ref 0 in
  Net.attach_app net ~node:1 (fun _ -> incr delivered);
  let sim = Net.sim net in
  (* Burst of 10 packets at t=0; link fails almost immediately. *)
  for _ = 1 to 10 do
    Net.originate net (Packet.make ~sim ~src:0 ~dst:1 ~flow:1 ~size:1000 Packet.Udp)
  done;
  Sim.schedule sim ~delay:0.001 (fun () -> Net.fail_link net ~src:0 ~dst:1);
  Sim.schedule sim ~delay:1.0 (fun () -> Net.restore_link net ~src:0 ~dst:1);
  Net.run net;
  Alcotest.(check int) "all eventually delivered" 10 !delivered

let test_tcp_tiny_transfer () =
  (* Less than one MSS: a single segment round-trips. *)
  let net = line_net 3 in
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:100 () in
  Net.run ~until:10.0 net;
  Alcotest.(check bool) "finished" true (Tcp.finished conn);
  Alcotest.(check int) "bytes" 100 (Tcp.bytes_acked conn)

let test_tcp_exact_mss_boundary () =
  let net = line_net 3 in
  let conn = Tcp.connect net ~src:0 ~dst:2 ~mss:500 ~total_bytes:1500 () in
  Net.run ~until:10.0 net;
  Alcotest.(check bool) "finished" true (Tcp.finished conn);
  Alcotest.(check int) "bytes" 1500 (Tcp.bytes_acked conn)

let test_tcp_stop_time () =
  (* A stop time freezes the offered data but does not corrupt state. *)
  let net = line_net 3 in
  let conn = Tcp.connect net ~src:0 ~dst:2 ~stop:1.0 () in
  Net.run ~until:10.0 net;
  let acked = Tcp.bytes_acked conn in
  Alcotest.(check bool) "made some progress" true (acked > 0);
  Alcotest.(check bool) "then stopped" true
    (acked <= int_of_float (1.5 *. 1.25e6))

let test_tcp_rto_backoff_under_blackhole () =
  (* A total blackhole mid-transfer: the sender keeps retrying with
     exponential backoff and never finishes, but also never runs away. *)
  let net = line_net 3 in
  let started = ref false in
  Router.set_behavior (Net.router net 1) (fun ctx _ ->
      match ctx.Router.prev with
      | Some _ when !started -> Router.Drop
      | _ -> Router.Forward);
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:5_000_000 () in
  Sim.schedule (Net.sim net) ~delay:0.5 (fun () -> started := true);
  Net.run ~until:120.0 net;
  Alcotest.(check bool) "not finished" false (Tcp.finished conn);
  Alcotest.(check bool) "timeouts occurred" true (Tcp.timeouts conn > 3);
  (* Backoff keeps the retry count modest over 2 minutes. *)
  Alcotest.(check bool) "bounded retries" true (Tcp.retransmits conn < 200)

let test_tcp_receiver_reordering () =
  (* Random 200 ms delays reorder segments; the out-of-order buffer still
     reassembles the byte stream completely. *)
  let net = line_net 3 in
  Router.set_behavior (Net.router net 1)
    (Core.Adversary.delay_fraction ~seed:4 ~delay:0.2 0.2);
  let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:200_000 () in
  Net.run ~until:120.0 net;
  Alcotest.(check bool) "finished despite reordering" true (Tcp.finished conn);
  Alcotest.(check int) "exact bytes" 200_000 (Tcp.bytes_acked conn)

let test_net_determinism () =
  (* Identical seeds produce identical traces. *)
  let run () =
    let net = line_net ~jitter_bound:100e-6 3 in
    let events = ref 0 in
    Net.subscribe_iface net (fun _ -> incr events);
    let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:100_000 () in
    Net.run ~until:20.0 net;
    (!events, Tcp.bytes_acked conn, Sim.events_processed (Net.sim net))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical" true (a = b)

let () =
  Alcotest.run "netsim"
    [ ( "sim",
        [ Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "until" `Quick test_sim_until;
          Alcotest.test_case "nested" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "rejects past" `Quick test_sim_rejects_past;
          Alcotest.test_case "fresh ids" `Quick test_sim_fresh_ids ] );
      ( "queues",
        [ Alcotest.test_case "fifo capacity" `Quick test_fifo_capacity;
          Alcotest.test_case "fifo order" `Quick test_fifo_order;
          Alcotest.test_case "red below min" `Quick test_red_below_min_never_drops;
          Alcotest.test_case "red between thresholds" `Quick test_red_drops_between_thresholds;
          Alcotest.test_case "red pure functions" `Quick test_red_pure_functions;
          Alcotest.test_case "gentle ramp" `Quick test_red_gentle_ramp ] );
      ( "iface",
        [ Alcotest.test_case "timing" `Quick test_iface_timing;
          Alcotest.test_case "serialization" `Quick test_iface_serialization ] );
      ( "network",
        [ Alcotest.test_case "end to end" `Quick test_net_end_to_end;
          Alcotest.test_case "congestion drops" `Quick test_net_congestion_drops;
          Alcotest.test_case "malicious drops" `Quick test_net_malicious_drop_counted;
          Alcotest.test_case "modification" `Quick test_net_modification;
          Alcotest.test_case "ttl expiry" `Quick test_net_ttl_expiry;
          Alcotest.test_case "fabrication" `Quick test_net_fabrication;
          Alcotest.test_case "policy forwarding" `Quick test_net_policy_forwarding;
          Alcotest.test_case "link failure" `Quick test_link_failure;
          Alcotest.test_case "failure resume" `Quick test_link_failure_buffered_resume;
          Alcotest.test_case "determinism" `Quick test_net_determinism ] );
      ( "flows",
        [ Alcotest.test_case "cbr count" `Quick test_cbr_count;
          Alcotest.test_case "poisson rate" `Quick test_poisson_rate;
          Alcotest.test_case "ping rtt" `Quick test_ping_rtt;
          Alcotest.test_case "ping loss" `Quick test_ping_loss ] );
      ( "tracer",
        [ Alcotest.test_case "records and bounds" `Quick test_tracer_records_and_bounds;
          Alcotest.test_case "filters" `Quick test_tracer_filters;
          Alcotest.test_case "marks malice" `Quick test_tracer_marks_malice ] );
      ( "tcp",
        [ Alcotest.test_case "completes" `Quick test_tcp_completes_transfer;
          Alcotest.test_case "goodput" `Quick test_tcp_goodput_bounded;
          Alcotest.test_case "fills bottleneck" `Quick test_tcp_fills_bottleneck_queue;
          Alcotest.test_case "syn drop" `Quick test_tcp_syn_drop_delays_connection;
          Alcotest.test_case "selective drops" `Quick test_tcp_selective_drops_collapse_goodput;
          Alcotest.test_case "two flows share" `Quick test_tcp_two_flows_share;
          Alcotest.test_case "tiny transfer" `Quick test_tcp_tiny_transfer;
          Alcotest.test_case "mss boundary" `Quick test_tcp_exact_mss_boundary;
          Alcotest.test_case "stop time" `Quick test_tcp_stop_time;
          Alcotest.test_case "rto backoff" `Quick test_tcp_rto_backoff_under_blackhole;
          Alcotest.test_case "receiver reordering" `Quick test_tcp_receiver_reordering ] ) ]
