(* Cross-cutting property-based tests: invariants of the priority queue,
   event engine, queues, summaries/TV, reconciliation-over-fingerprints,
   ECMP, and TCP under random loss. *)

open Netsim
module G = Topology.Graph

let to_alco = QCheck_alcotest.to_alcotest

(* --- Prioq --- *)

let prop_prioq_sorted =
  QCheck.Test.make ~name:"pop order is non-decreasing" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun priorities ->
      let q = Prioq.create () in
      List.iteri (fun i p -> Prioq.push q ~priority:p i) priorities;
      let rec drain last =
        match Prioq.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_prioq_fifo_ties =
  QCheck.Test.make ~name:"equal priorities pop in insertion order" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let q = Prioq.create () in
      for i = 0 to n - 1 do
        Prioq.push q ~priority:1.0 i
      done;
      let rec drain expect =
        match Prioq.pop q with
        | None -> expect = n
        | Some (_, v) -> v = expect && drain (expect + 1)
      in
      drain 0)

let prop_prioq_matches_sorted_reference =
  (* The drained (priority, value) sequence must equal a stable sort of
     the input by priority — full order, not just local monotonicity. *)
  QCheck.Test.make ~name:"pop sequence = stable sort of input" ~count:200
    QCheck.(list (float_range 0.0 100.0))
    (fun priorities ->
      let q = Prioq.create () in
      List.iteri (fun i p -> Prioq.push q ~priority:p i) priorities;
      let rec drain acc =
        match Prioq.pop q with None -> List.rev acc | Some pv -> drain (pv :: acc)
      in
      let expected =
        List.stable_sort
          (fun (p1, _) (p2, _) -> Float.compare p1 p2)
          (List.mapi (fun i p -> (p, i)) priorities)
      in
      drain [] = expected)

let prop_prioq_fifo_ties_interleaved =
  (* FIFO stability must survive interleaving with other priorities, not
     just an all-ties heap. *)
  QCheck.Test.make ~name:"ties stay FIFO when interleaved" ~count:200
    QCheck.(list (int_bound 3))
    (fun buckets ->
      let q = Prioq.create () in
      List.iteri (fun i b -> Prioq.push q ~priority:(float_of_int b) i) buckets;
      let rec drain acc =
        match Prioq.pop q with None -> List.rev acc | Some pv -> drain (pv :: acc)
      in
      let drained = drain [] in
      List.for_all
        (fun bucket ->
          let ids =
            List.filter_map
              (fun (p, i) -> if p = float_of_int bucket then Some i else None)
              drained
          in
          List.sort compare ids = ids)
        [ 0; 1; 2; 3 ])

let prop_prioq_pop_if_before =
  (* pop_if_before returns exactly the elements at or before the cutoff,
     in order, and leaves the rest intact. *)
  QCheck.Test.make ~name:"pop_if_before splits at the cutoff" ~count:200
    QCheck.(pair (float_range 0.0 100.0) (list (float_range 0.0 100.0)))
    (fun (cutoff, priorities) ->
      let q = Prioq.create () in
      List.iteri (fun i p -> Prioq.push q ~priority:p i) priorities;
      let rec drain acc =
        match Prioq.pop_if_before q ~until:cutoff with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      List.for_all (fun p -> p <= cutoff) popped
      && List.length popped = List.length (List.filter (fun p -> p <= cutoff) priorities)
      && Prioq.length q = List.length priorities - List.length popped
      && match Prioq.peek q with None -> true | Some (p, _) -> p > cutoff)

let prop_prioq_clear_keeps_capacity =
  QCheck.Test.make ~name:"clear empties but keeps capacity" ~count:100
    QCheck.(int_range 1 500)
    (fun n ->
      let q = Prioq.create () in
      for i = 0 to n - 1 do
        Prioq.push q ~priority:(float_of_int (i * 7 mod 13)) i
      done;
      let cap = Prioq.capacity q in
      Prioq.clear q;
      Prioq.is_empty q && Prioq.capacity q = cap
      && begin
           (* The heap stays usable after clear. *)
           Prioq.push q ~priority:1.0 42;
           Prioq.pop q = Some (1.0, 42)
         end)

let prop_prioq_length =
  QCheck.Test.make ~name:"length tracks pushes and pops" ~count:100
    QCheck.(list (float_range 0.0 10.0))
    (fun ps ->
      let q = Prioq.create () in
      List.iteri (fun i p -> Prioq.push q ~priority:p i) ps;
      let n = List.length ps in
      Prioq.length q = n
      && begin
           ignore (Prioq.pop q);
           Prioq.length q = max 0 (n - 1)
         end)

(* --- Keyring MACs --- *)

let prop_keyring_mac_roundtrip =
  (* mac is order-independent in the router pair, verifies, rejects
     tampering, and mac64 is the big-endian 8-byte prefix of mac. *)
  QCheck.Test.make ~name:"keyring mac/mac64/verify_mac" ~count:100
    QCheck.(triple (int_bound 5) (int_bound 5) string)
    (fun (a, b, msg) ->
      let ring = Crypto_sim.Keyring.create ~n:6 () in
      let tag = Crypto_sim.Keyring.mac ring a b msg in
      let prefix = ref 0L in
      for i = 0 to 7 do
        prefix :=
          Int64.logor (Int64.shift_left !prefix 8) (Int64.of_int (Char.code tag.[i]))
      done;
      String.length tag = 32
      && tag = Crypto_sim.Keyring.mac ring b a msg
      && Crypto_sim.Keyring.verify_mac ring a b msg tag
      && Crypto_sim.Keyring.mac64 ring a b msg = !prefix
      && (not (Crypto_sim.Keyring.verify_mac ring a b (msg ^ "!") tag))
      && (a = b || not (Crypto_sim.Keyring.verify_mac ring a ((b + 1) mod 6) msg tag)))

(* --- Sim --- *)

let prop_sim_time_monotone =
  QCheck.Test.make ~name:"events fire in time order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
    (fun delays ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter
        (fun d -> Sim.schedule sim ~delay:d (fun () -> fired := Sim.now sim :: !fired))
        delays;
      Sim.run sim;
      let order = List.rev !fired in
      List.sort compare order = order
      && List.length order = List.length delays)

(* --- Queue_fifo --- *)

let prop_fifo_occupancy_invariant =
  QCheck.Test.make ~name:"occupancy = sum of queued sizes <= limit" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 2000))
    (fun sizes ->
      let sim = Sim.create () in
      let q = Queue_fifo.create ~limit_bytes:8000 () in
      let accepted = ref 0 in
      List.iter
        (fun size ->
          let p = Packet.make ~sim ~src:0 ~dst:1 ~flow:0 ~size Packet.Udp in
          if Queue_fifo.try_enqueue q p then accepted := !accepted + size)
        sizes;
      Queue_fifo.occupancy q = !accepted && Queue_fifo.occupancy q <= 8000)

(* --- Red --- *)

let prop_red_physical_limit =
  QCheck.Test.make ~name:"red never exceeds the physical limit" ~count:50
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(int_range 1 300) (int_range 40 2000)))
    (fun (seed, sizes) ->
      let sim = Sim.create () in
      let rng = Random.State.make [| seed |] in
      let q = Red.create ~rng () in
      let now = ref 0.0 in
      List.iter
        (fun size ->
          now := !now +. 0.0005;
          ignore (Red.enqueue q ~now:!now ~link_bw:1.25e6
                    (Packet.make ~sim ~src:0 ~dst:1 ~flow:0 ~size Packet.Udp)))
        sizes;
      Red.occupancy q <= Red.default_params.Red.limit_bytes && Red.avg q >= 0.0)

(* --- Summary / TV --- *)

let summary_of fps =
  let s = Core.Summary.create Core.Summary.Content in
  List.iter (fun fp -> Core.Summary.observe s ~fp ~size:100 ~time:0.0) fps;
  s

let prop_tv_reflexive =
  QCheck.Test.make ~name:"tv(s, s) holds" ~count:200
    QCheck.(list (map Int64.of_int small_int))
    (fun fps ->
      let v = Core.Validation.tv ~sent:(summary_of fps) ~received:(summary_of fps) () in
      v.Core.Validation.ok)

let prop_tv_missing_fabricated_swap =
  QCheck.Test.make ~name:"swapping roles swaps missing/fabricated" ~count:200
    QCheck.(pair (list (map Int64.of_int small_int)) (list (map Int64.of_int small_int)))
    (fun (a, b) ->
      let sa = summary_of a and sb = summary_of b in
      let v1 = Core.Validation.tv ~sent:sa ~received:sb () in
      let v2 = Core.Validation.tv ~sent:sb ~received:sa () in
      List.sort compare v1.Core.Validation.missing
      = List.sort compare v2.Core.Validation.fabricated
      && List.sort compare v1.Core.Validation.fabricated
         = List.sort compare v2.Core.Validation.missing)

(* --- Reconciliation over packet fingerprints --- *)

let prop_reconcile_fingerprints =
  QCheck.Test.make ~name:"reconcile recovers dropped fingerprints" ~count:20
    QCheck.(pair (int_range 50 300) (int_range 0 10))
    (fun (n, dropped) ->
      QCheck.assume (dropped <= n);
      let elements =
        Array.init n (fun i ->
            Setrecon.Reconcile.element_of_fingerprint
              (Crypto_sim.Fnv.hash_int64 (Int64.of_int (i * 7 + 1))))
      in
      let received = Array.sub elements dropped (n - dropped) in
      match Setrecon.Reconcile.diff ~a:elements ~b:received () with
      | None -> false
      | Some r ->
          List.length r.Setrecon.Reconcile.a_minus_b = dropped
          && r.Setrecon.Reconcile.b_minus_a = [])

(* --- ECMP --- *)

let prop_ecmp_paths_shortest =
  QCheck.Test.make ~name:"ecmp path cost equals the shortest-path cost" ~count:20
    QCheck.(pair (int_range 8 14) (int_bound 1000))
    (fun (n, seed) ->
      let g = Topology.Generate.ispish ~seed ~n ~duplex_links:(2 * n) ~max_degree:n () in
      let e = Topology.Ecmp.compute g in
      let rt = Topology.Routing.compute g in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              src = dst
              ||
              match (Topology.Ecmp.path e ~src ~dst ~flow:(src * 31 + dst), Topology.Routing.cost rt src dst) with
              | Some p, Some c ->
                  let rec cost = function
                    | a :: (b :: _ as rest) ->
                        (G.link_exn g a b).G.cost + cost rest
                    | _ -> 0
                  in
                  cost p = c
              | None, None -> true
              | _ -> false)
            (List.init n Fun.id))
        (List.init n Fun.id))

(* --- TCP under random loss --- *)

let prop_tcp_progress_under_loss =
  QCheck.Test.make ~name:"tcp completes under random loss" ~count:8
    QCheck.(pair (int_bound 1000) (int_range 0 25))
    (fun (seed, loss_pct) ->
      let g = Topology.Generate.line ~n:3 in
      let net = Net.create ~seed:(seed + 1) ~jitter_bound:0.0 g in
      Net.use_routing net (Topology.Routing.compute g);
      let fraction = float_of_int loss_pct /. 100.0 in
      if fraction > 0.0 then
        Router.set_behavior (Net.router net 1)
          (Core.Adversary.drop_fraction ~seed fraction);
      let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:50_000 () in
      Net.run ~until:300.0 net;
      (* Reno with go-back-N recovery must eventually push everything
         through any constant loss rate <= 25%. *)
      Tcp.finished conn && Tcp.bytes_acked conn = 50_000)

let prop_tcp_never_overclaims =
  QCheck.Test.make ~name:"bytes_acked never exceeds the offered bytes" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let g = Topology.Generate.line ~n:3 in
      let net = Net.create ~seed:(seed + 1) ~jitter_bound:100e-6 g in
      Net.use_routing net (Topology.Routing.compute g);
      Router.set_behavior (Net.router net 1) (Core.Adversary.drop_fraction ~seed 0.1);
      let conn = Tcp.connect net ~src:0 ~dst:2 ~total_bytes:30_000 () in
      Net.run ~until:120.0 net;
      Tcp.bytes_acked conn <= 30_000)

(* --- Protocol chi soundness at packet level (Appendix C flavour) --- *)

let prop_chi_sound_and_complete =
  (* Random seeds, random attack intensity (possibly none): chi never
     alarms without malicious drops; blatant attacks are caught. *)
  QCheck.Test.make ~name:"chi: no malice, no alarm; heavy malice, alarm" ~count:8
    QCheck.(pair (int_bound 1000) (int_bound 2))
    (fun (seed, mode) ->
      let g = G.create ~n:5 in
      G.add_duplex g ~bw:12.5e6 ~delay:0.001 0 3;
      G.add_duplex g ~bw:12.5e6 ~delay:0.001 1 3;
      G.add_duplex g ~bw:12.5e6 ~delay:0.001 2 3;
      G.add_duplex g ~bw:1.25e6 ~delay:0.005 3 4;
      let net = Net.create ~seed:(seed + 1) ~jitter_bound:200e-6 g in
      let rt = Topology.Routing.compute g in
      Net.use_routing net rt;
      (* min_suspicious = 2: one borderline congestion drop in an unlucky
         jitter realization must not fail soundness (see ablation 5). *)
      let config =
        { Core.Chi.default_config with
          Core.Chi.tau = 1.0; learning_rounds = 4; min_suspicious = 2 }
      in
      let chi = Core.Chi.deploy ~net ~rt ~router:3 ~next:4 ~config () in
      let malicious = ref 0 in
      Net.subscribe_router net (fun ev ->
          match ev.Net.kind with Router.Malicious_drop _ -> incr malicious | _ -> ());
      List.iter (fun src -> ignore (Tcp.connect net ~src ~dst:4 ())) [ 0; 1; 2 ];
      (match mode with
      | 0 -> () (* benign *)
      | 1 ->
          Router.set_behavior (Net.router net 3)
            (Core.Adversary.after 8.0 (Core.Adversary.drop_fraction ~seed 0.3))
      | _ ->
          Router.set_behavior (Net.router net 3)
            (Core.Adversary.after 8.0 (Core.Adversary.drop_when_queue_above 0.9)));
      Net.run ~until:25.0 net;
      let alarms = List.length (Core.Chi.alarms chi) in
      if !malicious = 0 then alarms = 0
      else if !malicious > 30 then alarms > 0
      else true (* a handful of drops may legitimately take longer *))

(* --- Telemetry merge laws --- *)

(* The sharded engine's epoch-barrier aggregation depends on Hist and
   Timeseries merges being exact integer arithmetic: commutative and
   associative, so any grouping of per-shard collectors produces the
   same bytes.  Compare full observable state, not just totals. *)

module Hist = Telemetry.Hist
module Ts = Telemetry.Timeseries

let sample_gen = QCheck.(list_of_size Gen.(0 -- 60) (float_range (-2.0) 900.0))

let hist_of_values vs =
  let h = Hist.create ~buckets:20 ~min_exp:(-10) () in
  List.iter (Hist.record h) vs;
  h

let hist_state h =
  ( Array.init (Hist.buckets h) (Hist.bucket_count h),
    Hist.count h,
    Hist.sum h )

let prop_hist_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:300
    QCheck.(pair sample_gen sample_gen)
    (fun (a, b) ->
      let ha = hist_of_values a and hb = hist_of_values b in
      hist_state (Hist.merge ha hb) = hist_state (Hist.merge hb ha))

let prop_hist_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:300
    QCheck.(triple sample_gen sample_gen sample_gen)
    (fun (a, b, c) ->
      let ha = hist_of_values a
      and hb = hist_of_values b
      and hc = hist_of_values c in
      hist_state (Hist.merge (Hist.merge ha hb) hc)
      = hist_state (Hist.merge ha (Hist.merge hb hc)))

(* Timed samples spread far enough to force coarsening on some inputs,
   so the law is exercised across mismatched levels too. *)
let timed_gen =
  QCheck.(
    list_of_size
      Gen.(0 -- 60)
      (pair (float_range 0.0 40.0) (float_range (-1.0) 50.0)))

let ts_of_samples samples =
  let ts = Ts.create ~capacity:8 ~resolution:1.0 () in
  List.iter (fun (time, v) -> Ts.record ts ~time v) samples;
  ts

let ts_state ts =
  ( Ts.level ts,
    Ts.used ts,
    Array.init (Ts.used ts) (Ts.bucket_count ts),
    Array.init (Ts.used ts) (Ts.bucket_sum ts) )

let prop_ts_merge_commutative =
  QCheck.Test.make ~name:"timeseries merge is commutative" ~count:300
    QCheck.(pair timed_gen timed_gen)
    (fun (a, b) ->
      let ta = ts_of_samples a and tb = ts_of_samples b in
      ts_state (Ts.merge ta tb) = ts_state (Ts.merge tb ta))

let prop_ts_merge_associative =
  QCheck.Test.make ~name:"timeseries merge is associative" ~count:300
    QCheck.(triple timed_gen timed_gen timed_gen)
    (fun (a, b, c) ->
      let ta = ts_of_samples a
      and tb = ts_of_samples b
      and tc = ts_of_samples c in
      ts_state (Ts.merge (Ts.merge ta tb) tc)
      = ts_state (Ts.merge ta (Ts.merge tb tc)))

(* --- Meter --- *)

let prop_meter_totals =
  QCheck.Test.make ~name:"meter total equals delivered bytes" ~count:10
    QCheck.(pair (int_range 1 50) (int_range 100 1000))
    (fun (pps, size) ->
      let g = Topology.Generate.line ~n:2 in
      let net = Net.create ~jitter_bound:0.0 g in
      Net.use_routing net (Topology.Routing.compute g);
      let f =
        Flow.cbr net ~src:0 ~dst:1 ~rate_pps:(float_of_int pps) ~size ~start:0.0 ~stop:2.0
      in
      let meter = Meter.flow_throughput net ~node:1 ~flow:(Flow.flow_id f) ~bucket:0.5 in
      Net.run net;
      Meter.total_bytes meter = Flow.sent f * size)

let () =
  Alcotest.run "properties"
    [ ( "prioq",
        List.map to_alco
          [ prop_prioq_sorted; prop_prioq_fifo_ties; prop_prioq_length;
            prop_prioq_matches_sorted_reference; prop_prioq_fifo_ties_interleaved;
            prop_prioq_pop_if_before; prop_prioq_clear_keeps_capacity ] );
      ("keyring-mac", List.map to_alco [ prop_keyring_mac_roundtrip ]);
      ("sim", List.map to_alco [ prop_sim_time_monotone ]);
      ("queues", List.map to_alco [ prop_fifo_occupancy_invariant; prop_red_physical_limit ]);
      ("tv", List.map to_alco [ prop_tv_reflexive; prop_tv_missing_fabricated_swap ]);
      ("reconcile", List.map to_alco [ prop_reconcile_fingerprints ]);
      ("ecmp", List.map to_alco [ prop_ecmp_paths_shortest ]);
      ( "tcp",
        List.map to_alco [ prop_tcp_progress_under_loss; prop_tcp_never_overclaims ] );
      ("chi", List.map to_alco [ prop_chi_sound_and_complete ]);
      ( "telemetry-merge",
        List.map to_alco
          [ prop_hist_merge_commutative; prop_hist_merge_associative;
            prop_ts_merge_commutative; prop_ts_merge_associative ] );
      ("meter", List.map to_alco [ prop_meter_totals ]) ]
