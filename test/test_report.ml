(* Report pipeline and bench regression gate.

   - `mrdetect report` determinism: the mrdetect-report-v1 document
     distilled from a run's metrics export is byte-identical for shard
     counts 1, 2 and 4, and repeatable for the classic engine (K=0,
     physically a different run — its own deterministic bytes).
   - Export round-trips: Hist and Timeseries survive JSON export and
     re-import with identical observable state, and the Prometheus
     rendering of a Hist uses exactly the registry histogram's le edges.
   - Benchgate band arithmetic: pass/fail on both sides of each
     threshold, plus baseline-document spelunking. *)

module Export = Telemetry.Export
module Hist = Telemetry.Hist
module Ts = Telemetry.Timeseries
module Report = Experiments.Report
module Gate = Experiments.Benchgate
module Simulate = Experiments.Simulate

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_captured_stdout f =
  let path = Filename.temp_file "report_stdout" ".txt" in
  let oc = open_out path in
  let backup = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel oc) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 backup Unix.stdout;
      Unix.close backup;
      close_out oc)
    f;
  let s = read_file path in
  Sys.remove path;
  s

(* The shard suite's golden scenario: ring8/fatih, 12 s, seed 7. *)
let report_json ~shards () =
  let metrics = Filename.temp_file "report_metrics" ".json" in
  ignore
    (with_captured_stdout (fun () ->
         Simulate.run
           (Simulate.Config.make_exn ~protocol:"fatih" ~duration:12.0 ~seed:7
              ~flows:6 ~metrics ~shards Simulate.Ring)));
  let doc =
    match Export.of_string (read_file metrics) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "metrics parse (K=%d): %s" shards e
  in
  Sys.remove metrics;
  match Report.of_metrics doc with
  | Ok report -> Export.to_string report
  | Error e -> Alcotest.failf "report (K=%d): %s" shards e

let test_report_shard_identity () =
  let reference = report_json ~shards:1 () in
  Alcotest.(check bool)
    "non-trivial report" true
    (String.length reference > 500);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "K=%d report byte-identical to K=1" k)
        true
        (String.equal reference (report_json ~shards:k ())))
    [ 2; 4 ];
  (* The classic engine is a physically different run (its own RNG
     streams) but must be deterministic in its own right. *)
  let classic = report_json ~shards:0 () in
  Alcotest.(check bool)
    "K=0 repeatable" true
    (String.equal classic (report_json ~shards:0 ()));
  match Export.of_string classic with
  | Error e -> Alcotest.failf "classic report does not parse: %s" e
  | Ok doc -> (
      (match Export.member "schema" doc with
      | Some (Export.String s) ->
          Alcotest.(check string) "report schema" Report.schema s
      | _ -> Alcotest.fail "missing report schema");
      (match Option.bind (Export.member "scenario" doc) (Export.member "shards") with
      | None -> ()
      | Some _ -> Alcotest.fail "report must not echo the shard count");
      match Export.member "stats" doc with
      | Some (Export.Assoc _) -> ()
      | _ -> Alcotest.fail "report carries no stats block")

let test_report_html () =
  let metrics = Filename.temp_file "report_metrics" ".json" in
  ignore
    (with_captured_stdout (fun () ->
         Simulate.run
           (Simulate.Config.make_exn ~protocol:"fatih" ~duration:5.0 ~seed:3
              ~flows:4 ~metrics ~shards:1 Simulate.Ring)));
  let doc =
    match Export.of_string (read_file metrics) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "metrics parse: %s" e
  in
  Sys.remove metrics;
  let html =
    match Report.html_of_metrics doc with
    | Ok html -> html
    | Error e -> Alcotest.failf "html: %s" e
  in
  let contains needle =
    let n = String.length needle and h = String.length html in
    let rec go i = i + n <= h && (String.sub html i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "html contains %S" needle) true
        (contains needle))
    [ "<!doctype html>"; "<svg"; "delivery_latency"; "ring"; "fatih";
      "queue depth" ]

(* --- export round-trips --- *)

let test_hist_roundtrip () =
  let h = Hist.create ~buckets:12 ~min_exp:(-6) () in
  List.iter (Hist.record h) [ 0.001; 0.02; 0.02; 0.4; 7.0; 1e9; -3.0; 0.0 ];
  match Export.hist_of_json (Export.json_of_hist h) with
  | Error e -> Alcotest.failf "hist does not round-trip: %s" e
  | Ok h' ->
      Alcotest.(check int) "buckets" (Hist.buckets h) (Hist.buckets h');
      Alcotest.(check int) "min_exp" (Hist.min_exp h) (Hist.min_exp h');
      Alcotest.(check int) "count" (Hist.count h) (Hist.count h');
      Alcotest.(check (float 0.0)) "sum (exact)" (Hist.sum h) (Hist.sum h');
      for i = 0 to Hist.buckets h - 1 do
        Alcotest.(check int)
          (Printf.sprintf "bucket %d" i)
          (Hist.bucket_count h i)
          (Hist.bucket_count h' i)
      done

let test_timeseries_roundtrip () =
  let ts = Ts.create ~capacity:8 ~resolution:0.5 () in
  (* Push past the window so the series coarsens at least once. *)
  List.iter
    (fun (t, v) -> Ts.record ts ~time:t v)
    [ (0.1, 1.0); (0.2, 2.5); (1.7, 0.25); (3.9, 4.0); (9.5, 1.0); (11.0, 6.5) ];
  Alcotest.(check bool) "coarsened" true (Ts.level ts > 0);
  match Export.timeseries_of_json (Export.json_of_timeseries ts) with
  | Error e -> Alcotest.failf "timeseries does not round-trip: %s" e
  | Ok ts' ->
      Alcotest.(check int) "capacity" (Ts.capacity ts) (Ts.capacity ts');
      Alcotest.(check (float 0.0))
        "base resolution" (Ts.base_resolution ts)
        (Ts.base_resolution ts');
      Alcotest.(check int) "level" (Ts.level ts) (Ts.level ts');
      Alcotest.(check int) "used" (Ts.used ts) (Ts.used ts');
      for i = 0 to Ts.used ts - 1 do
        Alcotest.(check int)
          (Printf.sprintf "count %d" i)
          (Ts.bucket_count ts i)
          (Ts.bucket_count ts' i);
        Alcotest.(check (float 0.0))
          (Printf.sprintf "sum %d (exact)" i)
          (Ts.bucket_sum ts i) (Ts.bucket_sum ts' i)
      done

(* The Prometheus rendering of a Hist must use exactly the le edges the
   registry histogram with the same geometry emits — the satellite
   contract tying the always-on layer to the existing exporter. *)
let test_prom_le_edges_agree () =
  let buckets = 10 and min_exp = -3 in
  let h = Hist.create ~buckets ~min_exp () in
  let registry = Telemetry.Metrics.create () in
  let mh = Telemetry.Metrics.histogram registry ~buckets ~min_exp "x" in
  List.iter
    (fun v ->
      Hist.record h v;
      Telemetry.Metrics.observe mh v)
    [ 0.01; 0.3; 0.3; 2.0; 500.0 ];
  let edges_of text =
    (* every le="..." occurrence, in order *)
    let out = ref [] in
    let n = String.length text in
    let rec go i =
      if i + 4 <= n then
        if String.sub text i 4 = "le=\"" then begin
          let j = String.index_from text (i + 4) '"' in
          out := String.sub text (i + 4) (j - i - 4) :: !out;
          go (j + 1)
        end
        else go (i + 1)
    in
    go 0;
    List.rev !out
  in
  let hist_prom = Export.prometheus_of_hist ~name:"x" h in
  let registry_prom = Export.prometheus_of_registry registry in
  Alcotest.(check (list string))
    "identical le edges" (edges_of registry_prom) (edges_of hist_prom)

(* --- benchgate bands --- *)

let test_gate_lower_better () =
  let b = Gate.band ~slack:1.0 ~direction:Gate.Lower_better ~limit:1.5 "m" in
  let j measured = (Gate.judge b ~baseline:10.0 ~measured).Gate.ok in
  Alcotest.(check bool) "well under" true (j 9.0);
  Alcotest.(check bool) "exactly at threshold" true (j 16.0);
  Alcotest.(check bool) "just over" false (j 16.01);
  Alcotest.(check bool) "2x regression" false (j 32.0)

let test_gate_higher_better () =
  let b = Gate.band ~direction:Gate.Higher_better ~limit:2.0 "m" in
  let j measured = (Gate.judge b ~baseline:100.0 ~measured).Gate.ok in
  Alcotest.(check bool) "above baseline" true (j 110.0);
  Alcotest.(check bool) "exactly at threshold" true (j 50.0);
  Alcotest.(check bool) "just under" false (j 49.9);
  Alcotest.(check bool)
    "all_ok spots the failure" false
    (Gate.all_ok [ Gate.judge b ~baseline:100.0 ~measured:10.0 ])

let test_gate_band_validation () =
  Alcotest.check_raises "limit 1.0 rejected"
    (Invalid_argument "Benchgate.band: limit must exceed 1") (fun () ->
      ignore (Gate.band ~direction:Gate.Lower_better ~limit:1.0 "m"));
  Alcotest.check_raises "negative slack rejected"
    (Invalid_argument "Benchgate.band: negative slack") (fun () ->
      ignore (Gate.band ~slack:(-1.0) ~direction:Gate.Lower_better ~limit:2.0 "m"))

let test_gate_baseline_lookup () =
  let doc =
    Export.Assoc
      [ ("simulator", Export.Assoc [ ("events_per_second", Export.Float 5e6) ]);
        ( "modes",
          Export.List
            [ Export.Assoc
                [ ("mode", Export.String "pooled");
                  ("minor_words_per_event", Export.Float 10.6) ] ] ) ]
  in
  (match Gate.float_at doc [ "simulator"; "events_per_second" ] with
  | Some v -> Alcotest.(check (float 0.0)) "nested float" 5e6 v
  | None -> Alcotest.fail "float_at missed");
  Alcotest.(check bool) "missing path" true
    (Gate.float_at doc [ "simulator"; "nope" ] = None);
  (match Gate.find_by doc ~field:"modes" ~key:"mode" ~value:"pooled" with
  | Some row ->
      Alcotest.(check bool) "row field" true
        (Gate.float_at row [ "minor_words_per_event" ] = Some 10.6)
  | None -> Alcotest.fail "find_by missed");
  Alcotest.(check bool) "absent row" true
    (Gate.find_by doc ~field:"modes" ~key:"mode" ~value:"unpooled" = None)

let () =
  Alcotest.run "report"
    [ ( "determinism",
        [ Alcotest.test_case "shard-count byte identity" `Slow
            test_report_shard_identity ] );
      ("html", [ Alcotest.test_case "self-contained page" `Quick test_report_html ]);
      ( "roundtrip",
        [ Alcotest.test_case "hist json" `Quick test_hist_roundtrip;
          Alcotest.test_case "timeseries json" `Quick test_timeseries_roundtrip;
          Alcotest.test_case "prometheus le edges" `Quick test_prom_le_edges_agree ] );
      ( "benchgate",
        [ Alcotest.test_case "lower-better band" `Quick test_gate_lower_better;
          Alcotest.test_case "higher-better band" `Quick test_gate_higher_better;
          Alcotest.test_case "band validation" `Quick test_gate_band_validation;
          Alcotest.test_case "baseline lookup" `Quick test_gate_baseline_lookup ] ) ]
