(* Sharded-engine determinism suite.

   The contract under test: for every shard count K >= 1 the sharded
   engine produces byte-identical output — verdicts, journal, trace,
   oracle scores — on the same scenario.  K = 1 is the sequential
   reference of the same engine; the classic single-heap engine (shards
   absent) is exercised by every other suite and is unchanged. *)

module G = Topology.Graph
open Netsim

(* --- Prioq regression: stale references after grow + clear ---------- *)

(* The bug: [clear] used to spread one live value reference across the
   whole (possibly grown) capacity, and popping the last element left
   the popped value referenced in slot 0 — both kept dead values
   reachable.  Watch collectability directly with a finaliser. *)
let test_prioq_no_stale_refs () =
  let q = Prioq.create () in
  let collected = ref 0 in
  let n = 100 in
  (* Enough pushes to grow capacity several times. *)
  for i = 0 to n - 1 do
    let v = ref i in
    Gc.finalise (fun _ -> incr collected) v;
    Prioq.push q ~priority:(float_of_int i) v
  done;
  (* Pop half (exercises pop's scrub incl. the just-emptied case via the
     second heap below), then clear the rest with capacity grown. *)
  for _ = 1 to n / 2 do
    ignore (Prioq.pop q)
  done;
  Prioq.clear q;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "all cleared values collected" n !collected;
  Alcotest.(check bool) "capacity retained" true (Prioq.capacity q >= n);
  (* Pop-to-empty leaves nothing referenced either. *)
  let q2 = Prioq.create () in
  let collected2 = ref 0 in
  for i = 0 to 2 do
    let v = ref i in
    Gc.finalise (fun _ -> incr collected2) v;
    Prioq.push q2 ~priority:(float_of_int i) v
  done;
  while Prioq.pop q2 <> None do
    ()
  done;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "popped-to-empty values collected" 3 !collected2

let test_prioq_ranked () =
  let q = Prioq.create () in
  (* Same priority, ranks inserted out of order: pops must follow rank. *)
  List.iter
    (fun r -> Prioq.push_ranked q ~priority:1.0 ~rank:r r)
    [ 5; 1; 9; 3; 7 ];
  Alcotest.(check (option (pair (float 0.0) int)))
    "peek_key" (Some (1.0, 1)) (Prioq.peek_key q);
  let order = ref [] in
  let rec drain () =
    match Prioq.pop_ranked q ~until:infinity ~strict:false with
    | None -> ()
    | Some (_, r, v) ->
        Alcotest.(check int) "rank equals value" r v;
        order := r :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "rank order" [ 1; 3; 5; 7; 9 ] (List.rev !order);
  (* Strict window excludes the boundary. *)
  Prioq.push_ranked q ~priority:2.0 ~rank:1 1;
  Alcotest.(check bool) "strict excludes boundary" true
    (Prioq.pop_ranked q ~until:2.0 ~strict:true = None);
  Alcotest.(check bool) "inclusive takes boundary" true
    (Prioq.pop_ranked q ~until:2.0 ~strict:false <> None)

(* --- Partition ------------------------------------------------------ *)

let test_partition () =
  let g = Topology.Generate.ring ~n:8 in
  List.iter
    (fun k ->
      let owner = Shard.partition g ~k in
      Alcotest.(check int) "every router owned" 0
        (Array.fold_left (fun acc s -> if s < 0 || s >= k then acc + 1 else acc) 0 owner);
      let sizes = Array.make k 0 in
      Array.iter (fun s -> sizes.(s) <- sizes.(s) + 1) owner;
      Array.iteri
        (fun s size ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d of %d non-empty" s k)
            true (size > 0))
        sizes)
    [ 1; 2; 4; 8 ];
  (* Deterministic. *)
  let a = Shard.partition g ~k:3 and b = Shard.partition g ~k:3 in
  Alcotest.(check (array int)) "partition deterministic" a b;
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Shard.partition: 9 shards for 8 routers") (fun () ->
      ignore (Shard.partition g ~k:9))

(* --- Mailbox -------------------------------------------------------- *)

let test_mailbox_order () =
  let m = Mailbox.create ~capacity:4 in
  (* Push past capacity: ring + overflow must drain in push order. *)
  for i = 0 to 9 do
    Mailbox.push m i
  done;
  Alcotest.(check int) "pushed" 10 (Mailbox.pushed m);
  Alcotest.(check int) "overflowed" 6 (Mailbox.overflowed m);
  let got = ref [] in
  Mailbox.drain m (fun i -> got := i :: !got);
  Alcotest.(check (list int)) "drain order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !got);
  Alcotest.(check bool) "empty after drain" true (Mailbox.is_empty m);
  (* Reusable after drain. *)
  Mailbox.push m 42;
  let got2 = ref [] in
  Mailbox.drain m (fun i -> got2 := i :: !got2);
  Alcotest.(check (list int)) "ring reused" [ 42 ] !got2

(* --- Engine-level determinism --------------------------------------- *)

(* A scenario rich enough to cross shards constantly: ring of 8, CBR and
   Poisson flows on antipodal pairs, one malicious dropper, link
   corruption, and a detector-style event subscription.  The digest
   folds every observable (event stream order, times, uids, payloads,
   app deliveries) into one string. *)
let run_scenario ~shards ~duration () =
  let g = Topology.Generate.ring ~n:8 in
  let net = Net.create ~seed:11 ~jitter_bound:200e-6 ?shards g in
  let rt = Topology.Routing.compute g in
  Net.use_routing net rt;
  let buf = Buffer.create 4096 in
  Net.subscribe_iface net (fun ev ->
      let tag =
        match ev.Net.kind with
        | Iface.Enqueued p -> Printf.sprintf "enq:%d" p.Packet.uid
        | Iface.Drop_congestion p -> Printf.sprintf "dcong:%d" p.Packet.uid
        | Iface.Drop_red_early p -> Printf.sprintf "dred:%d" p.Packet.uid
        | Iface.Drop_link_down p -> Printf.sprintf "ddown:%d" p.Packet.uid
        | Iface.Drop_corrupted p -> Printf.sprintf "dcorr:%d" p.Packet.uid
        | Iface.Transmit_start p -> Printf.sprintf "tx:%d" p.Packet.uid
        | Iface.Delivered p -> Printf.sprintf "dlv:%d:%Ld" p.Packet.uid p.Packet.payload
      in
      Buffer.add_string buf
        (Printf.sprintf "%.9f i %d>%d %s\n" ev.Net.time ev.Net.router ev.Net.next tag));
  Net.subscribe_router net (fun ev ->
      let tag =
        match ev.Net.kind with
        | Router.Malicious_drop { pkt; _ } -> Printf.sprintf "mdrop:%d" pkt.Packet.uid
        | Router.Delivered_local pkt -> Printf.sprintf "local:%d" pkt.Packet.uid
        | Router.Ttl_expired pkt -> Printf.sprintf "ttl:%d" pkt.Packet.uid
        | Router.No_route pkt -> Printf.sprintf "noroute:%d" pkt.Packet.uid
        | _ -> "other"
      in
      Buffer.add_string buf
        (Printf.sprintf "%.9f r %d %s\n" ev.Net.time ev.Net.router tag));
  (* Malicious interior router dropping a fraction of transit packets. *)
  Router.set_behavior (Net.router net 2) (Core.Adversary.drop_fraction ~seed:7 0.3);
  (* Benign corruption on one link. *)
  Net.set_link_corruption net ~src:5 ~dst:6 0.05;
  let flows =
    [ Flow.cbr net ~src:0 ~dst:4 ~rate_pps:300.0 ~size:400 ~start:0.05 ~stop:duration;
      Flow.poisson net ~src:1 ~dst:5 ~rate_pps:200.0 ~size:600 ~start:0.1 ~stop:duration;
      Flow.cbr net ~src:6 ~dst:2 ~rate_pps:250.0 ~size:300 ~start:0.02 ~stop:duration ]
  in
  let counted = Flow.delivered_counter net ~node:4 ~flow:(Flow.flow_id (List.hd flows)) in
  (* A mid-run control action through the control plane. *)
  Sim.schedule_at (Net.sim net) ~time:(duration /. 3.0) (fun () ->
      Net.fail_link net ~src:3 ~dst:4);
  Sim.schedule_at (Net.sim net) ~time:(duration /. 2.0) (fun () ->
      Net.restore_link net ~src:3 ~dst:4);
  Net.run ~until:duration net;
  Buffer.add_string buf
    (Printf.sprintf "sent=%s delivered=%d events=%d\n"
       (String.concat "," (List.map (fun f -> string_of_int (Flow.sent f)) flows))
       (counted ())
       (Net.events_processed net));
  Buffer.contents buf

let test_shard_k_invariance () =
  let reference = run_scenario ~shards:(Some 1) ~duration:3.0 () in
  List.iter
    (fun k ->
      let got = run_scenario ~shards:(Some k) ~duration:3.0 () in
      Alcotest.(check bool)
        (Printf.sprintf "K=%d byte-identical to K=1" k)
        true
        (String.equal reference got))
    [ 2; 4 ];
  Alcotest.(check bool) "scenario non-trivial" true (String.length reference > 10_000)

let test_shard_sequential_repeatable () =
  (* Two consecutive K=2 runs in one process must agree (root-rank
     context resets per engine). *)
  let a = run_scenario ~shards:(Some 2) ~duration:1.0 () in
  let b = run_scenario ~shards:(Some 2) ~duration:1.0 () in
  Alcotest.(check bool) "repeatable" true (String.equal a b)

(* --- end-to-end golden runs through the scenario driver -------------- *)

(* The real contract: `mrdetect simulate --shards K` is byte-identical
   for every K — report text, typed journal, everything the user sees.
   Capture stdout through the same dup2 dance the telemetry tests use,
   and fold the journal file in. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_captured_stdout f =
  let path = Filename.temp_file "shard_stdout" ".txt" in
  let oc = open_out path in
  let backup = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 (Unix.descr_of_out_channel oc) Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 backup Unix.stdout;
      Unix.close backup;
      close_out oc)
    f;
  let s = read_file path in
  Sys.remove path;
  s

let simulate_digest ~topo ~protocol ?faults ~shards () =
  let journal = Filename.temp_file "shard_journal" ".jsonl" in
  let out =
    with_captured_stdout (fun () ->
        Experiments.Simulate.run
          (Experiments.Simulate.Config.make_exn ~protocol ~duration:12.0 ~seed:7
             ~flows:6 ~journal ?faults ~shards topo))
  in
  let j = read_file journal in
  Sys.remove journal;
  out ^ "--journal--\n" ^ j

(* [recorded], when given, pins the run against MD5 digests captured
   from the seed engine (pre-pooling, pre-flat-heap): the classic K=0
   digest and the sharded K>=1 digest.  The optimized engine must
   reproduce the seed's reports and journals bit-for-bit for every K —
   recycling, flat events and batched synchronization are pure
   mechanics, never observable. *)
let check_k_invariant name ~topo ~protocol ?faults ?recorded () =
  (match recorded with
  | None -> ()
  | Some (classic_hex, _) ->
      let classic = simulate_digest ~topo ~protocol ?faults ~shards:0 () in
      Alcotest.(check string)
        (name ^ ": K=0 matches the recorded seed digest")
        classic_hex
        (Digest.to_hex (Digest.string classic)));
  let reference = simulate_digest ~topo ~protocol ?faults ~shards:1 () in
  Alcotest.(check bool)
    (name ^ ": non-trivial run")
    true
    (String.length reference > 500);
  (match recorded with
  | None -> ()
  | Some (_, sharded_hex) ->
      Alcotest.(check string)
        (name ^ ": K=1 matches the recorded seed digest")
        sharded_hex
        (Digest.to_hex (Digest.string reference)));
  List.iter
    (fun k ->
      let got = simulate_digest ~topo ~protocol ?faults ~shards:k () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: K=%d byte-identical to K=1" name k)
        true
        (String.equal reference got))
    [ 2; 4 ]

let test_golden_ring_fatih () =
  check_k_invariant "ring8/fatih" ~topo:Experiments.Simulate.Ring ~protocol:"fatih" ()

let test_golden_abilene_chi () =
  check_k_invariant "abilene/chi" ~topo:Experiments.Simulate.Abilene ~protocol:"chi"
    ~recorded:
      ( "9b6bdd95e53f33ec11f0d32be6056d78" (* classic, seed engine *),
        "7632a9edaaf0a00127a1ba17db4be606" (* sharded, any K *) )
    ()

let test_golden_chaos_faults () =
  (* Under a gentle chaos plan (benign flaps and a crash), the oracle
     line and every journaled fault record must also be K-invariant. *)
  let g = Topology.Generate.ring ~n:8 in
  let schedule =
    Faults.Chaos.generate ~seed:5 ~graph:g ~duration:12.0
      ~budget:Faults.Chaos.gentle_budget ()
  in
  let path = Filename.temp_file "shard_faults" ".txt" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Faults.Schedule.to_string schedule));
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_k_invariant "ring8/fatih/chaos" ~topo:Experiments.Simulate.Ring
        ~protocol:"fatih" ~faults:path
        ~recorded:
          ( "d0941d928d0d1cb8318bc0378b0f3647" (* classic, seed engine *),
            "8c39d490fe34bbca97ded1f1d9391730" (* sharded, any K *) )
        ())

(* Cross-shard mailbox delivery must reproduce the single-heap order
   even when K does not divide the ring: every cut link is cross-shard
   on one side and not the other, so any ordering bug shows up as a
   journal diff. *)
let test_mailbox_order_matches_single_heap () =
  let a = run_scenario ~shards:(Some 1) ~duration:2.0 () in
  let b = run_scenario ~shards:(Some 3) ~duration:2.0 () in
  Alcotest.(check bool) "K=3 equals K=1" true (String.equal a b)

let test_shard_validation () =
  let g = Topology.Generate.ring ~n:4 in
  Alcotest.(check bool) "too many shards rejected" true
    (match Net.create ~shards:5 g with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative epoch rejected" true
    (match Net.create ~shards:2 ~epoch:0.0 g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "shard"
    [ ( "prioq",
        [ Alcotest.test_case "no stale refs after grow+clear" `Quick
            test_prioq_no_stale_refs;
          Alcotest.test_case "ranked push/pop" `Quick test_prioq_ranked ] );
      ( "partition",
        [ Alcotest.test_case "covers, balanced, deterministic" `Quick test_partition ] );
      ("mailbox", [ Alcotest.test_case "push order, overflow" `Quick test_mailbox_order ]);
      ( "engine",
        [ Alcotest.test_case "K in {1,2,4} byte-identical" `Quick test_shard_k_invariance;
          Alcotest.test_case "consecutive runs identical" `Quick
            test_shard_sequential_repeatable;
          Alcotest.test_case "K=3 matches single heap" `Quick
            test_mailbox_order_matches_single_heap;
          Alcotest.test_case "shard-count validation" `Quick test_shard_validation ] );
      ( "golden",
        [ Alcotest.test_case "ring8 fatih K-invariant" `Quick test_golden_ring_fatih;
          Alcotest.test_case "abilene chi K-invariant" `Quick test_golden_abilene_chi;
          Alcotest.test_case "chaos faults K-invariant" `Quick
            test_golden_chaos_faults ] ) ]
