(* Tests for the telemetry subsystem: metrics registry (counters,
   gauges, log-bucketed histograms), bounded journal, JSON
   emitter/parser round-trips, and an end-to-end golden check that
   `mrdetect simulate --metrics` output parses back and conserves
   packets. *)

open Telemetry

(* --- histograms: bucketing edge cases --- *)

let test_histogram_zero_and_negative () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:8 "h" in
  Alcotest.(check int) "zero lands in bin 0" 0 (Metrics.bucket_index h 0.0);
  Alcotest.(check int) "negative lands in bin 0" 0 (Metrics.bucket_index h (-3.5));
  Metrics.observe h 0.0;
  Metrics.observe h (-1.0);
  Alcotest.(check int) "count tracks observes" 2 (Metrics.histogram_count h)

let test_histogram_boundaries () =
  (* With min_exp = 0: bin 1 is (0, 1], bin 2 is (1, 2], bin 3 is (2, 4]. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:8 "h" in
  Alcotest.(check int) "1.0 in bin 1" 1 (Metrics.bucket_index h 1.0);
  Alcotest.(check int) "just above 1 in bin 2" 2 (Metrics.bucket_index h 1.0001);
  Alcotest.(check int) "2.0 in bin 2" 2 (Metrics.bucket_index h 2.0);
  Alcotest.(check int) "3.0 in bin 3" 3 (Metrics.bucket_index h 3.0);
  Alcotest.(check int) "4.0 in bin 3" 3 (Metrics.bucket_index h 4.0);
  Alcotest.(check (float 1e-9)) "bin 3 upper edge" 4.0 (Metrics.bucket_upper h 3)

let test_histogram_overflow () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:4 "h" in
  (* buckets = 4: bin 0 (<= 0), bin 1 (0,1], bin 2 (1,2], bin 3 overflow. *)
  Alcotest.(check int) "huge value in overflow bin" 3
    (Metrics.bucket_index h 1e30);
  Alcotest.(check int) "infinity in overflow bin" 3
    (Metrics.bucket_index h infinity);
  Alcotest.(check bool) "overflow upper edge is +inf" true
    (Metrics.bucket_upper h 3 = infinity);
  Metrics.observe h 1e30;
  Metrics.observe h 0.5;
  Alcotest.(check int) "count" 2 (Metrics.histogram_count h);
  Alcotest.(check (float 1e20)) "sum" 1e30 (Metrics.histogram_sum h)

let test_histogram_min_exp () =
  (* min_exp shifts the whole ladder: with min_exp = -14, bin 1 is
     (0, 2^-14] — sub-millisecond latencies stay distinguishable. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:24 ~min_exp:(-14) "lat" in
  Alcotest.(check int) "2^-14 in bin 1" 1 (Metrics.bucket_index h (Float.pow 2.0 (-14.0)));
  Alcotest.(check int) "2^-13 in bin 2" 2 (Metrics.bucket_index h (Float.pow 2.0 (-13.0)));
  Alcotest.(check bool) "tiny value above zero not in bin 0" true
    (Metrics.bucket_index h 1e-9 >= 1)

(* --- counters: label cardinality --- *)

let test_counter_label_identity () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "drops" ~labels:[ ("cause", "congestion") ] in
  (* Same name + same labels (any order) resolves to the same series. *)
  let a' = Metrics.counter reg "drops" ~labels:[ ("cause", "congestion") ] in
  let b = Metrics.counter reg "drops" ~labels:[ ("cause", "malicious") ] in
  Metrics.inc a;
  Metrics.add a' 2;
  Metrics.inc b;
  Alcotest.(check int) "same labels share the cell" 3 (Metrics.counter_value a);
  Alcotest.(check int) "distinct labels are distinct series" 1
    (Metrics.counter_value b);
  let series =
    List.filter (fun (name, _, _, _) -> name = "drops") (Metrics.snapshot reg)
  in
  Alcotest.(check int) "two series in the family" 2 (List.length series)

let test_counter_label_order_insensitive () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "x" ~labels:[ ("a", "1"); ("b", "2") ] in
  let b = Metrics.counter reg "x" ~labels:[ ("b", "2"); ("a", "1") ] in
  Metrics.inc a;
  Alcotest.(check int) "label order does not split the series" 1
    (Metrics.counter_value b)

let test_type_conflict_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "n");
  Alcotest.check_raises "re-registering as a gauge fails"
    (Invalid_argument "Metrics.gauge: n is not a gauge") (fun () ->
      ignore (Metrics.gauge reg "n"))

(* --- journal: bounded memory under sustained load --- *)

let test_journal_bounded_1m () =
  let j = Journal.create ~capacity:4096 () in
  let n = 1_000_000 in
  for i = 1 to n do
    Journal.record j i
  done;
  Alcotest.(check int) "total counts every offer" n (Journal.total j);
  Alcotest.(check int) "retained is capped at capacity" 4096 (Journal.retained j);
  Alcotest.(check int) "dropped is the excess" (n - 4096) (Journal.dropped j);
  (* The ring keeps exactly the newest 4096, oldest first. *)
  let contents = Journal.to_list j in
  Alcotest.(check int) "list length" 4096 (List.length contents);
  Alcotest.(check int) "oldest retained" (n - 4096 + 1) (List.hd contents);
  Alcotest.(check int) "newest retained" n (List.nth contents 4095)

let test_journal_under_capacity () =
  let j = Journal.create ~capacity:16 () in
  List.iter (Journal.record j) [ "a"; "b"; "c" ];
  Alcotest.(check int) "retained = total when under capacity" 3 (Journal.retained j);
  Alcotest.(check int) "nothing dropped" 0 (Journal.dropped j);
  Alcotest.(check (list string)) "order preserved" [ "a"; "b"; "c" ]
    (Journal.to_list j);
  Journal.clear j;
  Alcotest.(check int) "clear resets" 0 (Journal.total j)

(* --- JSON: emitter/parser round-trip --- *)

let test_json_roundtrip () =
  let open Export in
  let doc =
    Assoc
      [ ("s", String "a \"quoted\"\n\tstring");
        ("i", Int (-42));
        ("f", Float 3.25);
        ("big", Float 1.5e300);
        ("null", Null);
        ("flags", List [ Bool true; Bool false ]);
        ("nested", Assoc [ ("xs", List [ Int 1; Int 2; Int 3 ]) ]) ]
  in
  match of_string (to_string doc) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      Alcotest.(check string) "round-trip is stable" (to_string doc)
        (to_string parsed)

let test_json_special_floats () =
  let open Export in
  (match of_string (to_string (Float nan)) with
  | Ok Null -> ()
  | _ -> Alcotest.fail "NaN must render as null");
  match of_string (to_string (Float infinity)) with
  | Ok (Float f) -> Alcotest.(check bool) "inf survives" true (f = infinity)
  | _ -> Alcotest.fail "infinity must parse back"

let test_json_accessors () =
  let open Export in
  match of_string {|{"a": {"b": [10, 2.5, "x"]}}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      let b = Option.get (member "a" doc) |> member "b" |> Option.get in
      let xs = Option.get (to_list_opt b) in
      Alcotest.(check (option int)) "int" (Some 10) (to_int (List.nth xs 0));
      Alcotest.(check (option (float 1e-9))) "float widens int" (Some 10.0)
        (to_float (List.nth xs 0));
      Alcotest.(check (option int)) "int truncates float" (Some 2)
        (to_int (List.nth xs 1));
      Alcotest.(check (option string)) "string" (Some "x")
        (to_string_opt (List.nth xs 2))

(* --- \u escape decoding --- *)

let parse_string_exn s =
  match Export.of_string s with
  | Ok (Export.String v) -> v
  | Ok _ -> Alcotest.failf "%s did not parse to a string" s
  | Error e -> Alcotest.failf "%s failed to parse: %s" s e

let test_unicode_escapes () =
  Alcotest.(check string) "ASCII escape" "A" (parse_string_exn {|"A"|});
  (* 2-byte UTF-8: U+00E9 LATIN SMALL LETTER E WITH ACUTE. *)
  Alcotest.(check string) "latin-1 supplement" "\xc3\xa9"
    (parse_string_exn {|"\u00e9"|});
  (* 3-byte UTF-8: U+20AC EURO SIGN. *)
  Alcotest.(check string) "BMP three-byte" "\xe2\x82\xac"
    (parse_string_exn {|"\u20ac"|});
  (* Surrogate halves (here U+1F600 as a pair) are not reassembled:
     each folds to '?'. *)
  Alcotest.(check string) "surrogate pair folds" "??"
    (parse_string_exn {|"\ud83d\ude00"|});
  (* Control characters round-trip through the emitter's \u form. *)
  let s = "ctl\x01\x1f" in
  Alcotest.(check string) "control chars round-trip" s
    (parse_string_exn (Export.to_string (Export.String s)));
  match Export.of_string {|"\uZZZZ"|} with
  | Ok _ -> Alcotest.fail "malformed \\u escape accepted"
  | Error _ -> ()

(* --- Prometheus text exposition: escaping and le edges --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_contains text needle =
  if not (contains text needle) then
    Alcotest.failf "missing %S in:\n%s" needle text

let test_prom_label_escaping () =
  let reg = Metrics.create () in
  (* backslash, double quote and newline — the three characters the
     exposition format requires escaping in label values. *)
  Metrics.inc (Metrics.counter reg "esc" ~labels:[ ("path", "a\\b\"c\nd") ]);
  let text = Export.prometheus_of_registry reg in
  check_contains text "esc{path=\"a\\\\b\\\"c\\nd\"} 1";
  (* No double escaping: the rendered line has exactly one backslash
     pair for the input backslash. *)
  if contains text "\\\\\\\\" then
    Alcotest.failf "label value double-escaped:\n%s" text

let test_prom_histogram_le_edges () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:4 "lat" ~labels:[ ("queue", "q0") ] in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  Metrics.observe h 1e30;
  let text = Export.prometheus_of_registry reg in
  (* Finite bucket edges render as plain numbers, the overflow bin as
     +Inf, and the counts are cumulative. *)
  check_contains text "lat_bucket{queue=\"q0\",le=\"0\"} 0";
  check_contains text "lat_bucket{queue=\"q0\",le=\"1\"} 1";
  check_contains text "lat_bucket{queue=\"q0\",le=\"2\"} 2";
  check_contains text "lat_bucket{queue=\"q0\",le=\"+Inf\"} 3";
  check_contains text "lat_count{queue=\"q0\"} 3";
  check_contains text "# TYPE lat histogram"

(* --- journal: single-writer guard under domains --- *)

let test_journal_cross_domain_rejected () =
  let j = Journal.create ~capacity:16 () in
  Journal.record j 1;
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           match Journal.record j 2 with
           | () -> false
           | exception Invalid_argument _ -> true))
  in
  Alcotest.(check bool) "cross-domain record raises" true raised;
  Alcotest.(check int) "owner's records intact" 1 (Journal.total j);
  (* clear releases ownership: another domain may claim the journal. *)
  Journal.clear j;
  let claimed =
    Domain.join
      (Domain.spawn (fun () ->
           match Journal.record j 3 with
           | () -> true
           | exception Invalid_argument _ -> false))
  in
  Alcotest.(check bool) "clear releases ownership" true claimed

let test_journal_per_domain_merge () =
  (* The supported multi-domain pattern: one journal per domain, merged
     at collection time.  Two domains hammer their own journals. *)
  let js = Array.init 2 (fun _ -> Journal.create ~capacity:4096 ()) in
  let doms =
    Array.mapi
      (fun i j ->
        Domain.spawn (fun () ->
            for k = 0 to 9_999 do
              Journal.record j ((i * 10_000) + k)
            done))
      js
  in
  Array.iter Domain.join doms;
  let merged = List.concat_map Journal.to_list (Array.to_list js) in
  Alcotest.(check int) "both rings full after the merge"
    (2 * 4096) (List.length merged);
  Array.iteri
    (fun i j ->
      Alcotest.(check int) "nothing lost beyond ring eviction" 10_000
        (Journal.total j);
      match Journal.to_list j with
      | newest_surviving :: _ ->
          Alcotest.(check int) "oldest survivor is total - capacity"
            ((i * 10_000) + 10_000 - 4096) newest_surviving
      | [] -> Alcotest.fail "empty journal after stress")
    js

(* --- golden: a simulate run's metrics export parses and conserves --- *)

let field path doc =
  List.fold_left
    (fun acc k -> Option.bind acc (Export.member k))
    (Some doc) path

let req_int path doc =
  match Option.bind (field path doc) Export.to_int with
  | Some v -> v
  | None -> Alcotest.failf "missing integer field %s" (String.concat "." path)

let test_simulate_metrics_conserve () =
  let path = Filename.temp_file "mrdetect_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Quiet scenario output; the export file is what we check. *)
      let devnull = open_out (if Sys.win32 then "NUL" else "/dev/null") in
      let stdout_backup = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 (Unix.descr_of_out_channel devnull) Unix.stdout;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 stdout_backup Unix.stdout;
          Unix.close stdout_backup;
          close_out devnull)
        (fun () ->
          Experiments.Simulate.run
            (Experiments.Simulate.Config.make_exn ~protocol:"chi"
               ~attack:(Experiments.Simulate.Drop_fraction 0.3) ~attacker:2
               ~duration:12.0 ~seed:7 ~flows:6 ~metrics:path
               Experiments.Simulate.Ring));
      let contents =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Export.of_string contents with
      | Error e -> Alcotest.failf "metrics file is not valid JSON: %s" e
      | Ok doc ->
          Alcotest.(check (option string)) "schema" (Some "mrdetect-metrics-v1")
            (Option.bind (field [ "schema" ] doc) Export.to_string_opt);
          let injected = req_int [ "conservation"; "injected" ] doc in
          let delivered = req_int [ "conservation"; "delivered" ] doc in
          let dropped = req_int [ "conservation"; "dropped" ] doc in
          let fragmented = req_int [ "conservation"; "fragmented" ] doc in
          let in_flight = req_int [ "conservation"; "in_flight" ] doc in
          Alcotest.(check bool) "some traffic ran" true (injected > 0);
          Alcotest.(check int) "packets conserve" injected
            (delivered + dropped + fragmented + in_flight);
          Alcotest.(check bool) "engine processed events" true
            (req_int [ "engine"; "events_processed" ] doc > 0);
          (* The registry view agrees with the conservation block. *)
          let metrics = Option.get (field [ "metrics" ] doc) in
          let series = Option.get (Export.to_list_opt metrics) in
          let sum_counter name =
            List.fold_left
              (fun acc s ->
                match Option.bind (Export.member "name" s) Export.to_string_opt with
                | Some n when n = name ->
                    acc + Option.value ~default:0
                            (Option.bind (Export.member "value" s) Export.to_int)
                | _ -> acc)
              0 series
          in
          Alcotest.(check int) "dropped counter family sums to the block"
            dropped (sum_counter "pkt_dropped_total"))

let () =
  Alcotest.run "telemetry"
    [ ("histogram",
       [ Alcotest.test_case "zero and negative" `Quick test_histogram_zero_and_negative;
         Alcotest.test_case "bucket boundaries" `Quick test_histogram_boundaries;
         Alcotest.test_case "overflow bin" `Quick test_histogram_overflow;
         Alcotest.test_case "min_exp shift" `Quick test_histogram_min_exp ]);
      ("counters",
       [ Alcotest.test_case "label identity" `Quick test_counter_label_identity;
         Alcotest.test_case "label order" `Quick test_counter_label_order_insensitive;
         Alcotest.test_case "type conflict" `Quick test_type_conflict_rejected ]);
      ("journal",
       [ Alcotest.test_case "bounded under 1M events" `Quick test_journal_bounded_1m;
         Alcotest.test_case "under capacity" `Quick test_journal_under_capacity;
         Alcotest.test_case "cross-domain write rejected" `Quick
           test_journal_cross_domain_rejected;
         Alcotest.test_case "per-domain journals merge" `Quick
           test_journal_per_domain_merge ]);
      ("json",
       [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "special floats" `Quick test_json_special_floats;
         Alcotest.test_case "accessors" `Quick test_json_accessors;
         Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes ]);
      ("prometheus",
       [ Alcotest.test_case "label escaping" `Quick test_prom_label_escaping;
         Alcotest.test_case "histogram le edges" `Quick
           test_prom_histogram_le_edges ]);
      ("golden",
       [ Alcotest.test_case "simulate --metrics conserves" `Quick
           test_simulate_metrics_conserve ]) ]
