(* Tests for the telemetry subsystem: metrics registry (counters,
   gauges, log-bucketed histograms), bounded journal, JSON
   emitter/parser round-trips, and an end-to-end golden check that
   `mrdetect simulate --metrics` output parses back and conserves
   packets. *)

open Telemetry

(* --- histograms: bucketing edge cases --- *)

let test_histogram_zero_and_negative () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:8 "h" in
  Alcotest.(check int) "zero lands in bin 0" 0 (Metrics.bucket_index h 0.0);
  Alcotest.(check int) "negative lands in bin 0" 0 (Metrics.bucket_index h (-3.5));
  Metrics.observe h 0.0;
  Metrics.observe h (-1.0);
  Alcotest.(check int) "count tracks observes" 2 (Metrics.histogram_count h)

let test_histogram_boundaries () =
  (* With min_exp = 0: bin 1 is (0, 1], bin 2 is (1, 2], bin 3 is (2, 4]. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:8 "h" in
  Alcotest.(check int) "1.0 in bin 1" 1 (Metrics.bucket_index h 1.0);
  Alcotest.(check int) "just above 1 in bin 2" 2 (Metrics.bucket_index h 1.0001);
  Alcotest.(check int) "2.0 in bin 2" 2 (Metrics.bucket_index h 2.0);
  Alcotest.(check int) "3.0 in bin 3" 3 (Metrics.bucket_index h 3.0);
  Alcotest.(check int) "4.0 in bin 3" 3 (Metrics.bucket_index h 4.0);
  Alcotest.(check (float 1e-9)) "bin 3 upper edge" 4.0 (Metrics.bucket_upper h 3)

let test_histogram_overflow () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:4 "h" in
  (* buckets = 4: bin 0 (<= 0), bin 1 (0,1], bin 2 (1,2], bin 3 overflow. *)
  Alcotest.(check int) "huge value in overflow bin" 3
    (Metrics.bucket_index h 1e30);
  Alcotest.(check int) "infinity in overflow bin" 3
    (Metrics.bucket_index h infinity);
  Alcotest.(check bool) "overflow upper edge is +inf" true
    (Metrics.bucket_upper h 3 = infinity);
  Metrics.observe h 1e30;
  Metrics.observe h 0.5;
  Alcotest.(check int) "count" 2 (Metrics.histogram_count h);
  Alcotest.(check (float 1e20)) "sum" 1e30 (Metrics.histogram_sum h)

let test_histogram_min_exp () =
  (* min_exp shifts the whole ladder: with min_exp = -14, bin 1 is
     (0, 2^-14] — sub-millisecond latencies stay distinguishable. *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:24 ~min_exp:(-14) "lat" in
  Alcotest.(check int) "2^-14 in bin 1" 1 (Metrics.bucket_index h (Float.pow 2.0 (-14.0)));
  Alcotest.(check int) "2^-13 in bin 2" 2 (Metrics.bucket_index h (Float.pow 2.0 (-13.0)));
  Alcotest.(check bool) "tiny value above zero not in bin 0" true
    (Metrics.bucket_index h 1e-9 >= 1)

(* --- counters: label cardinality --- *)

let test_counter_label_identity () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "drops" ~labels:[ ("cause", "congestion") ] in
  (* Same name + same labels (any order) resolves to the same series. *)
  let a' = Metrics.counter reg "drops" ~labels:[ ("cause", "congestion") ] in
  let b = Metrics.counter reg "drops" ~labels:[ ("cause", "malicious") ] in
  Metrics.inc a;
  Metrics.add a' 2;
  Metrics.inc b;
  Alcotest.(check int) "same labels share the cell" 3 (Metrics.counter_value a);
  Alcotest.(check int) "distinct labels are distinct series" 1
    (Metrics.counter_value b);
  let series =
    List.filter (fun (name, _, _, _) -> name = "drops") (Metrics.snapshot reg)
  in
  Alcotest.(check int) "two series in the family" 2 (List.length series)

let test_counter_label_order_insensitive () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "x" ~labels:[ ("a", "1"); ("b", "2") ] in
  let b = Metrics.counter reg "x" ~labels:[ ("b", "2"); ("a", "1") ] in
  Metrics.inc a;
  Alcotest.(check int) "label order does not split the series" 1
    (Metrics.counter_value b)

let test_type_conflict_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "n");
  Alcotest.check_raises "re-registering as a gauge fails"
    (Invalid_argument "Metrics.gauge: n is not a gauge") (fun () ->
      ignore (Metrics.gauge reg "n"))

(* --- journal: bounded memory under sustained load --- *)

let test_journal_bounded_1m () =
  let j = Journal.create ~capacity:4096 () in
  let n = 1_000_000 in
  for i = 1 to n do
    Journal.record j i
  done;
  Alcotest.(check int) "total counts every offer" n (Journal.total j);
  Alcotest.(check int) "retained is capped at capacity" 4096 (Journal.retained j);
  Alcotest.(check int) "dropped is the excess" (n - 4096) (Journal.dropped j);
  (* The ring keeps exactly the newest 4096, oldest first. *)
  let contents = Journal.to_list j in
  Alcotest.(check int) "list length" 4096 (List.length contents);
  Alcotest.(check int) "oldest retained" (n - 4096 + 1) (List.hd contents);
  Alcotest.(check int) "newest retained" n (List.nth contents 4095)

let test_journal_under_capacity () =
  let j = Journal.create ~capacity:16 () in
  List.iter (Journal.record j) [ "a"; "b"; "c" ];
  Alcotest.(check int) "retained = total when under capacity" 3 (Journal.retained j);
  Alcotest.(check int) "nothing dropped" 0 (Journal.dropped j);
  Alcotest.(check (list string)) "order preserved" [ "a"; "b"; "c" ]
    (Journal.to_list j);
  Journal.clear j;
  Alcotest.(check int) "clear resets" 0 (Journal.total j)

(* --- JSON: emitter/parser round-trip --- *)

let test_json_roundtrip () =
  let open Export in
  let doc =
    Assoc
      [ ("s", String "a \"quoted\"\n\tstring");
        ("i", Int (-42));
        ("f", Float 3.25);
        ("big", Float 1.5e300);
        ("null", Null);
        ("flags", List [ Bool true; Bool false ]);
        ("nested", Assoc [ ("xs", List [ Int 1; Int 2; Int 3 ]) ]) ]
  in
  match of_string (to_string doc) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok parsed ->
      Alcotest.(check string) "round-trip is stable" (to_string doc)
        (to_string parsed)

let test_json_special_floats () =
  let open Export in
  (match of_string (to_string (Float nan)) with
  | Ok Null -> ()
  | _ -> Alcotest.fail "NaN must render as null");
  match of_string (to_string (Float infinity)) with
  | Ok (Float f) -> Alcotest.(check bool) "inf survives" true (f = infinity)
  | _ -> Alcotest.fail "infinity must parse back"

let test_json_accessors () =
  let open Export in
  match of_string {|{"a": {"b": [10, 2.5, "x"]}}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      let b = Option.get (member "a" doc) |> member "b" |> Option.get in
      let xs = Option.get (to_list_opt b) in
      Alcotest.(check (option int)) "int" (Some 10) (to_int (List.nth xs 0));
      Alcotest.(check (option (float 1e-9))) "float widens int" (Some 10.0)
        (to_float (List.nth xs 0));
      Alcotest.(check (option int)) "int truncates float" (Some 2)
        (to_int (List.nth xs 1));
      Alcotest.(check (option string)) "string" (Some "x")
        (to_string_opt (List.nth xs 2))

(* --- golden: a simulate run's metrics export parses and conserves --- *)

let field path doc =
  List.fold_left
    (fun acc k -> Option.bind acc (Export.member k))
    (Some doc) path

let req_int path doc =
  match Option.bind (field path doc) Export.to_int with
  | Some v -> v
  | None -> Alcotest.failf "missing integer field %s" (String.concat "." path)

let test_simulate_metrics_conserve () =
  let path = Filename.temp_file "mrdetect_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Quiet scenario output; the export file is what we check. *)
      let devnull = open_out (if Sys.win32 then "NUL" else "/dev/null") in
      let stdout_backup = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 (Unix.descr_of_out_channel devnull) Unix.stdout;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 stdout_backup Unix.stdout;
          Unix.close stdout_backup;
          close_out devnull)
        (fun () ->
          Experiments.Simulate.run
            { Experiments.Simulate.Config.default with
              topo = Experiments.Simulate.Ring;
              protocol = `Chi;
              attack = Experiments.Simulate.Drop_fraction 0.3;
              attacker = 2;
              duration = 12.0;
              seed = 7;
              flows = 6;
              metrics = Some path
            });
      let contents =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Export.of_string contents with
      | Error e -> Alcotest.failf "metrics file is not valid JSON: %s" e
      | Ok doc ->
          Alcotest.(check (option string)) "schema" (Some "mrdetect-metrics-v1")
            (Option.bind (field [ "schema" ] doc) Export.to_string_opt);
          let injected = req_int [ "conservation"; "injected" ] doc in
          let delivered = req_int [ "conservation"; "delivered" ] doc in
          let dropped = req_int [ "conservation"; "dropped" ] doc in
          let fragmented = req_int [ "conservation"; "fragmented" ] doc in
          let in_flight = req_int [ "conservation"; "in_flight" ] doc in
          Alcotest.(check bool) "some traffic ran" true (injected > 0);
          Alcotest.(check int) "packets conserve" injected
            (delivered + dropped + fragmented + in_flight);
          Alcotest.(check bool) "engine processed events" true
            (req_int [ "engine"; "events_processed" ] doc > 0);
          (* The registry view agrees with the conservation block. *)
          let metrics = Option.get (field [ "metrics" ] doc) in
          let series = Option.get (Export.to_list_opt metrics) in
          let sum_counter name =
            List.fold_left
              (fun acc s ->
                match Option.bind (Export.member "name" s) Export.to_string_opt with
                | Some n when n = name ->
                    acc + Option.value ~default:0
                            (Option.bind (Export.member "value" s) Export.to_int)
                | _ -> acc)
              0 series
          in
          Alcotest.(check int) "dropped counter family sums to the block"
            dropped (sum_counter "pkt_dropped_total"))

let () =
  Alcotest.run "telemetry"
    [ ("histogram",
       [ Alcotest.test_case "zero and negative" `Quick test_histogram_zero_and_negative;
         Alcotest.test_case "bucket boundaries" `Quick test_histogram_boundaries;
         Alcotest.test_case "overflow bin" `Quick test_histogram_overflow;
         Alcotest.test_case "min_exp shift" `Quick test_histogram_min_exp ]);
      ("counters",
       [ Alcotest.test_case "label identity" `Quick test_counter_label_identity;
         Alcotest.test_case "label order" `Quick test_counter_label_order_insensitive;
         Alcotest.test_case "type conflict" `Quick test_type_conflict_rejected ]);
      ("journal",
       [ Alcotest.test_case "bounded under 1M events" `Quick test_journal_bounded_1m;
         Alcotest.test_case "under capacity" `Quick test_journal_under_capacity ]);
      ("json",
       [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "special floats" `Quick test_json_special_floats;
         Alcotest.test_case "accessors" `Quick test_json_accessors ]);
      ("golden",
       [ Alcotest.test_case "simulate --metrics conserves" `Quick
           test_simulate_metrics_conserve ]) ]
