(* Tests for the span/trace layer: collector unit behaviour (ids,
   ordering, sampling), the flight recorder (verdict evidence pinned
   against ring eviction), Chrome trace-event export (schema
   validation, verdict extraction, the `trace explain` renderer) and a
   golden end-to-end check that `mrdetect simulate --trace-out` writes
   a file that parses back with per-hop spans, round spans and a
   verdict whose evidence ids all resolve. *)

open Telemetry

(* --- collector: ids, ordering, lookup --- *)

let test_span_ids_monotone () =
  let t = Span.create () in
  let a = Span.instant t ~name:"a" ~pid:1 ~tid:0 ~time:1.0 () in
  let b =
    Span.span t ~name:"b" ~pid:1 ~tid:0 ~start:0.5 ~finish:0.7 ()
  in
  let c = Span.instant t ~name:"c" ~pid:1 ~tid:0 ~time:2.0 () in
  Alcotest.(check bool) "ids strictly increase" true (a < b && b < c);
  Alcotest.(check bool) "id 0 never issued" true (a > 0);
  Alcotest.(check int) "recorded counts entries" 3 (Span.recorded t);
  (match Span.find t b with
  | Some e ->
      Alcotest.(check string) "find resolves" "b" e.Span.name;
      (match e.Span.kind with
      | Span.Complete { duration } ->
          Alcotest.(check (float 1e-9)) "duration" 0.2 duration
      | _ -> Alcotest.fail "b should be a Complete span")
  | None -> Alcotest.fail "find lost entry b");
  (* entries come back sorted by (time, id), not by recording order. *)
  let names = List.map (fun e -> e.Span.name) (Span.entries t) in
  Alcotest.(check (list string)) "sorted by time" [ "b"; "a"; "c" ] names

let test_span_negative_duration_clamped () =
  let t = Span.create () in
  let i = Span.span t ~name:"x" ~pid:1 ~tid:0 ~start:5.0 ~finish:4.0 () in
  match Span.find t i with
  | Some { Span.kind = Span.Complete { duration }; _ } ->
      Alcotest.(check (float 1e-9)) "finish before start clamps" 0.0 duration
  | _ -> Alcotest.fail "span lost"

(* --- sampling --- *)

let test_sampling_extremes () =
  let all = Span.create ~sample:1.0 () in
  for _ = 1 to 100 do
    if Span.new_trace all = None then Alcotest.fail "rate 1.0 skipped a packet"
  done;
  Alcotest.(check int) "all offered" 100 (Span.traces_started all);
  Alcotest.(check int) "all sampled" 100 (Span.traces_sampled all);
  let none = Span.create ~sample:0.0 () in
  for _ = 1 to 100 do
    if Span.new_trace none <> None then Alcotest.fail "rate 0.0 traced a packet"
  done;
  Alcotest.(check int) "none sampled" 0 (Span.traces_sampled none)

let test_sampling_deterministic () =
  let draw seed =
    let t = Span.create ~sample:0.3 ~seed () in
    List.init 200 (fun _ -> Span.new_trace t <> None)
  in
  Alcotest.(check (list bool)) "same seed, same coin sequence" (draw 42)
    (draw 42);
  let hits = List.length (List.filter Fun.id (draw 42)) in
  Alcotest.(check bool) "rate 0.3 samples some but not all" true
    (hits > 0 && hits < 200)

let test_sampling_rejects_bad_rate () =
  Alcotest.(check bool) "rate above 1 rejected" true
    (match Span.create ~sample:1.5 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- flight recorder: evidence survives ring eviction --- *)

let test_flight_recorder_pins_evidence () =
  let t = Span.create ~capacity:32 ~flight:4 () in
  let ev =
    Span.instant t ~name:"suspicious-loss" ~cat:"evidence" ~pid:2 ~tid:0
      ~time:1.0 ~routers:[ 2 ] ()
  in
  let v =
    Span.verdict t ~time:2.0 ~detector:"chi" ~subject:2 ~suspects:[ 2 ]
      ~alarm:true ~evidence:[ ev ] ()
  in
  (* Flood the ring far past capacity; the pinned entries must survive. *)
  for i = 1 to 1_000 do
    ignore
      (Span.instant t ~name:"noise" ~pid:1 ~tid:9 ~time:(3.0 +. float i) ())
  done;
  Alcotest.(check bool) "ring evicted entries" true (Span.dropped t > 0);
  Alcotest.(check bool) "flight recorder holds pins" true (Span.pinned t > 0);
  (match Span.find t ev with
  | Some e -> Alcotest.(check string) "evidence survives" "suspicious-loss" e.Span.name
  | None -> Alcotest.fail "pinned evidence was evicted");
  (match Span.find t v with
  | Some { Span.kind = Span.Verdict { evidence; detector; _ }; _ } ->
      Alcotest.(check (list int)) "verdict keeps its evidence ids" [ ev ] evidence;
      Alcotest.(check string) "detector" "chi" detector
  | _ -> Alcotest.fail "pinned verdict was evicted");
  (* Unpinned noise from before the flood's tail is gone. *)
  Alcotest.(check (option string)) "unpinned entries do evict" None
    (Option.map (fun e -> e.Span.name) (Span.find t (v + 1)));
  (* entries() merges ring and flight buffer without duplicates. *)
  let es = Span.entries t in
  let ids = List.map (fun e -> e.Span.id) es in
  Alcotest.(check int) "no duplicate ids in merged view"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_pin_recent_without_verdict () =
  let t = Span.create ~capacity:16 ~flight:8 () in
  let marked =
    Span.instant t ~name:"crash-site" ~pid:1 ~tid:3 ~time:1.0 ~routers:[ 3 ] ()
  in
  let pinned = Span.pin_recent t ~routers:[ 3 ] () in
  Alcotest.(check bool) "pin_recent pinned something" true (pinned > 0);
  for i = 1 to 200 do
    ignore (Span.instant t ~name:"noise" ~pid:1 ~tid:0 ~time:(2.0 +. float i) ())
  done;
  match Span.find t marked with
  | Some _ -> ()
  | None -> Alcotest.fail "pin_recent did not protect the crash window"

(* --- export: document structure, validation, explain --- *)

let populated_collector () =
  let t = Span.create () in
  let tid = Span.thread t ~pid:Span.detector_pid "chi r2" in
  let hop =
    Span.span t ~trace:1 ~name:"queue" ~cat:"hop" ~pid:Span.network_pid ~tid:2
      ~start:0.10 ~finish:0.25 ~routers:[ 2; 3 ] ()
  in
  let loss =
    Span.instant t ~trace:1 ~name:"suspicious-loss" ~cat:"evidence"
      ~pid:Span.detector_pid ~tid ~time:0.5 ~routers:[ 2 ]
      ~args:[ ("confidence", Export.Float 0.9) ]
      ()
  in
  let _v =
    Span.verdict t ~time:1.0 ~detector:"chi" ~subject:2 ~suspects:[ 2 ]
      ~confidence:0.9 ~alarm:true ~detail:"loss above threshold"
      ~evidence:[ hop; loss ] ()
  in
  t

let test_document_roundtrip_and_validate () =
  let t = populated_collector () in
  let doc = Trace_export.document t in
  (match Trace_export.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh document fails validation: %s" e);
  (* The serialized form parses back and still validates. *)
  (match Export.of_string (Export.to_string doc) with
  | Error e -> Alcotest.failf "document does not parse back: %s" e
  | Ok parsed -> (
      match Trace_export.validate parsed with
      | Ok () -> ()
      | Error e -> Alcotest.failf "round-tripped document invalid: %s" e));
  Alcotest.(check (option string)) "schema tag" (Some "mrdetect-trace-v1")
    (Option.bind
       (Option.bind (Export.member "otherData" doc) (Export.member "schema"))
       Export.to_string_opt)

let test_verdict_extraction () =
  let doc = Trace_export.document (populated_collector ()) in
  match Trace_export.verdicts doc with
  | [ v ] ->
      Alcotest.(check string) "detector" "chi" v.Trace_export.detector;
      Alcotest.(check (option int)) "subject" (Some 2) v.Trace_export.subject;
      Alcotest.(check (list int)) "suspects" [ 2 ] v.Trace_export.suspects;
      Alcotest.(check bool) "alarm" true v.Trace_export.alarm;
      Alcotest.(check int) "two evidence entries" 2
        (List.length v.Trace_export.evidence)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_explain_renders_chain () =
  let doc = Trace_export.document (populated_collector ()) in
  match Trace_export.explain doc with
  | Error e -> Alcotest.failf "explain failed: %s" e
  | Ok report ->
      let has needle =
        let nl = String.length needle and tl = String.length report in
        let rec go i = i + nl <= tl && (String.sub report i nl = needle || go (i + 1)) in
        if not (go 0) then Alcotest.failf "missing %S in report:\n%s" needle report
      in
      has "chi ALARM";
      has "subject=r2";
      has "loss above threshold";
      has "suspicious-loss";
      has "queue"

let test_validate_rejects_malformed () =
  let open Export in
  let ev ?(ph = "i") ?(ts = 1.0) ?dur ?(args = []) () =
    Assoc
      ([ ("name", String "e"); ("ph", String ph); ("ts", Float ts);
         ("pid", Int 1); ("tid", Int 0) ]
      @ (match dur with Some d -> [ ("dur", Float d) ] | None -> [])
      @ [ ("args", Assoc (("id", Int 1) :: args)) ])
  in
  let doc evs = Assoc [ ("traceEvents", List evs) ] in
  let rejects label d =
    match Trace_export.validate d with
    | Ok () -> Alcotest.failf "%s should have been rejected" label
    | Error _ -> ()
  in
  rejects "no traceEvents" (Assoc [ ("displayTimeUnit", String "ms") ]);
  rejects "unknown phase" (doc [ ev ~ph:"B" () ]);
  rejects "X without dur" (doc [ ev ~ph:"X" () ]);
  rejects "negative dur" (doc [ ev ~ph:"X" ~dur:(-1.0) () ]);
  rejects "time going backwards" (doc [ ev ~ts:2.0 (); ev ~ts:1.0 () ]);
  rejects "dangling evidence id"
    (doc [ ev ~args:[ ("evidence", List [ Int 999 ]) ] () ]);
  match Trace_export.validate (doc [ ev ~ph:"X" ~dur:3.0 () ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed event rejected: %s" e

(* --- golden: a simulate run's trace export parses and explains --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_events pred doc =
  match Option.bind (Export.member "traceEvents" doc) Export.to_list_opt with
  | None -> 0
  | Some evs -> List.length (List.filter pred evs)

let event_str k ev = Option.bind (Export.member k ev) Export.to_string_opt

let test_simulate_trace_golden () =
  let path = Filename.temp_file "mrdetect_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Quiet scenario output; the trace file is what we check. *)
      let devnull = open_out (if Sys.win32 then "NUL" else "/dev/null") in
      let stdout_backup = Unix.dup Unix.stdout in
      flush stdout;
      Unix.dup2 (Unix.descr_of_out_channel devnull) Unix.stdout;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 stdout_backup Unix.stdout;
          Unix.close stdout_backup;
          close_out devnull)
        (fun () ->
          Experiments.Simulate.run
            (Experiments.Simulate.Config.make_exn ~protocol:"fatih"
               ~attack:(Experiments.Simulate.Drop_fraction 0.4) ~attacker:2
               ~duration:25.0 ~seed:7 ~flows:6 ~trace_out:path
               Experiments.Simulate.Ring));
      match Export.of_string (String.trim (read_file path)) with
      | Error e -> Alcotest.failf "trace file is not valid JSON: %s" e
      | Ok doc ->
          (match Trace_export.validate doc with
          | Ok () -> ()
          | Error e -> Alcotest.failf "trace file fails validation: %s" e);
          let is_span name ev =
            event_str "ph" ev = Some "X" && event_str "name" ev = Some name
          in
          Alcotest.(check bool) "per-hop queue spans present" true
            (count_events (is_span "queue") doc > 0);
          Alcotest.(check bool) "per-hop transmit spans present" true
            (count_events (is_span "transmit") doc > 0);
          Alcotest.(check bool) "detector round spans present" true
            (count_events
               (fun ev ->
                 event_str "ph" ev = Some "X" && event_str "cat" ev = Some "round")
               doc
             > 0);
          (match Trace_export.verdicts doc with
          | [] -> Alcotest.fail "no verdict provenance in trace"
          | vs ->
              Alcotest.(check bool) "an alarm names the attacker" true
                (List.exists
                   (fun v ->
                     v.Trace_export.alarm
                     && (v.Trace_export.subject = Some 2
                        || List.mem 2 v.Trace_export.suspects))
                   vs);
              Alcotest.(check bool) "a verdict carries evidence" true
                (List.exists (fun v -> v.Trace_export.evidence <> []) vs));
          (* validate already proved every evidence id resolves; explain
             must therefore render a non-empty report. *)
          (match Trace_export.explain doc with
          | Ok report ->
              Alcotest.(check bool) "explain renders a chain" true
                (String.length report > 0)
          | Error e -> Alcotest.failf "explain failed: %s" e))

let () =
  Alcotest.run "trace"
    [ ( "span",
        [ Alcotest.test_case "ids and ordering" `Quick test_span_ids_monotone;
          Alcotest.test_case "negative duration clamped" `Quick
            test_span_negative_duration_clamped ] );
      ( "sampling",
        [ Alcotest.test_case "extremes" `Quick test_sampling_extremes;
          Alcotest.test_case "deterministic" `Quick test_sampling_deterministic;
          Alcotest.test_case "bad rate rejected" `Quick
            test_sampling_rejects_bad_rate ] );
      ( "flight",
        [ Alcotest.test_case "verdict pins evidence" `Quick
            test_flight_recorder_pins_evidence;
          Alcotest.test_case "pin_recent" `Quick test_pin_recent_without_verdict ] );
      ( "export",
        [ Alcotest.test_case "round-trip and validate" `Quick
            test_document_roundtrip_and_validate;
          Alcotest.test_case "verdict extraction" `Quick test_verdict_extraction;
          Alcotest.test_case "explain" `Quick test_explain_renders_chain;
          Alcotest.test_case "malformed rejected" `Quick
            test_validate_rejects_malformed ] );
      ( "golden",
        [ Alcotest.test_case "simulate --trace-out round-trips" `Quick
            test_simulate_trace_golden ] ) ]
